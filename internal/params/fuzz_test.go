package params

import (
	"errors"
	"math"
	"testing"

	"repro/internal/errs"
)

// FuzzParseKV: malformed name=value pairs must surface as
// errs.ErrBadParam, never panic — this is the path every CLI -param
// flag and every scenario/metric spec file funnels through.
func FuzzParseKV(f *testing.F) {
	for _, seed := range []string{"a=1", "alpha=2.5", "=1", "a", "", "a=x", "a=1e999", "seed=-3", "a=b=c", "=", "\x00=\x00"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		name, v, err := ParseKV(s)
		if err != nil {
			if !errors.Is(err, errs.ErrBadParam) {
				t.Fatalf("ParseKV(%q) error %v does not wrap ErrBadParam", s, err)
			}
			return
		}
		if name == "" {
			t.Fatalf("ParseKV(%q) accepted an empty name", s)
		}
		_ = v
	})
}

// FuzzResolve: resolution against a spec list must reject garbage with
// errs.ErrBadParam and never panic, whatever the name/value.
func FuzzResolve(f *testing.F) {
	f.Add("n", 5.0)
	f.Add("alpha", math.Inf(1))
	f.Add("bogus", 1.5)
	f.Add("", math.NaN())
	f.Add("n", -1e308)
	one, ten := 1.0, 10.0
	specs := []Spec{
		{Name: "n", Kind: Int, Default: 5, Min: &one, Max: &ten},
		{Name: "alpha", Kind: Float, Default: 0.5},
	}
	f.Fuzz(func(t *testing.T, name string, v float64) {
		out, err := Resolve("fuzz", specs, Params{name: v})
		if err != nil {
			if !errors.Is(err, errs.ErrBadParam) {
				t.Fatalf("Resolve(%q=%v) error %v does not wrap ErrBadParam", name, v, err)
			}
			return
		}
		if math.IsNaN(out[name]) || math.IsInf(out[name], 0) {
			t.Fatalf("Resolve accepted non-finite %q=%v", name, v)
		}
	})
}
