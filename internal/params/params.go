// Package params is the shared typed-parameter machinery under both
// registries: generators (internal/scenario) and metrics
// (internal/metricreg) declare their interfaces as []Spec, carry
// arguments as Params (a JSON-number map, so every parameter set
// round-trips through JSON verbatim), and validate user input through
// Resolve. All rejections wrap errs.ErrBadParam, never panic —
// malformed CLI flags and fuzzer garbage alike surface as classifiable
// errors.
package params

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/errs"
)

// Kind is the declared type of one parameter.
type Kind string

// Parameter kinds. Values travel as JSON numbers (float64); Int-kind
// parameters additionally require an integral value.
const (
	Int   Kind = "int"
	Float Kind = "float"
)

// Spec declares one named parameter: its kind, default, and optional
// closed bounds. Specs are JSON-serializable so tooling can enumerate a
// registered component's interface.
type Spec struct {
	Name    string  `json:"name"`
	Kind    Kind    `json:"kind"`
	Default float64 `json:"default"`
	// Min/Max bound the accepted value when non-nil.
	Min  *float64 `json:"min,omitempty"`
	Max  *float64 `json:"max,omitempty"`
	Help string   `json:"help,omitempty"`
}

// Check validates one value against the spec, wrapping errs.ErrBadParam
// on NaN/Inf, non-integral Int values, and bound violations.
func (s *Spec) Check(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return errs.BadParamf("parameter %q = %v", s.Name, v)
	}
	if s.Kind == Int && v != math.Trunc(v) {
		return errs.BadParamf("parameter %q = %v, want an integer", s.Name, v)
	}
	if s.Min != nil && v < *s.Min {
		return errs.BadParamf("parameter %q = %v below minimum %v", s.Name, v, *s.Min)
	}
	if s.Max != nil && v > *s.Max {
		return errs.BadParamf("parameter %q = %v above maximum %v", s.Name, v, *s.Max)
	}
	return nil
}

// Params carries arguments by name. Values are float64 — the JSON
// number type — so a Params map round-trips through JSON verbatim;
// Int-kind parameters are validated to hold integral values.
type Params map[string]float64

// Int reads a parameter as an int (the value is validated integral
// before a component sees it).
func (p Params) Int(name string) int { return int(p[name]) }

// Float reads a parameter as a float64.
func (p Params) Float(name string) float64 { return p[name] }

// Seed reads the conventional "seed" parameter.
func (p Params) Seed() int64 { return int64(p["seed"]) }

// Clone returns an independent copy of p (nil stays usable: the copy is
// an empty, writable map).
func (p Params) Clone() Params {
	out := make(Params, len(p)+1)
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Resolve validates user-supplied params against the declared specs and
// returns a complete parameter set with defaults filled in. Unknown
// names, non-integral Int values and out-of-bounds values are rejected
// with errs.ErrBadParam-wrapping errors prefixed by owner (e.g.
// `scenario: generator "ba"`).
func Resolve(owner string, specs []Spec, p Params) (Params, error) {
	byName := make(map[string]*Spec, len(specs))
	out := make(Params, len(specs))
	for i := range specs {
		byName[specs[i].Name] = &specs[i]
		out[specs[i].Name] = specs[i].Default
	}
	for name, v := range p {
		spec, ok := byName[name]
		if !ok {
			return nil, errs.BadParamf("%s has no parameter %q (have %s)",
				owner, name, Names(specs))
		}
		if err := spec.Check(v); err != nil {
			return nil, errs.BadParamf("%s: %v", owner, err)
		}
		out[name] = v
	}
	return out, nil
}

// Names renders the declared parameter names, sorted and
// comma-separated, for error messages and listings.
func Names(specs []Spec) string {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// ParseKV splits one "name=value" pair, wrapping errs.ErrBadParam on a
// missing '=', empty name, or non-numeric value.
func ParseKV(s string) (string, float64, error) {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return "", 0, errs.BadParamf("want name=value, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return "", 0, errs.BadParamf("parameter %q: invalid value %q", name, val)
	}
	return name, v, nil
}

// ParseKVs folds a list of "name=value" pairs into a Params map; later
// pairs override earlier ones.
func ParseKVs(pairs []string) (Params, error) {
	out := Params{}
	for _, s := range pairs {
		name, v, err := ParseKV(s)
		if err != nil {
			return nil, err
		}
		out[name] = v
	}
	return out, nil
}

// Selection names one registered component with optional parameters —
// the unit every registry (metrics, attacks, traffic models) validates
// and the CLIs parse. It round-trips through JSON.
type Selection struct {
	Name   string `json:"name"`
	Params Params `json:"params,omitempty"`
}

// ParseSelections builds a component set from a comma-separated name
// list plus "component.param=value" assignments — the shared CLI flag
// syntax of every registry. owner prefixes error messages (e.g.
// "metricreg"), noun names the component kind (e.g. "metric"), and
// canonical maps aliased spellings onto registry keys (nil = identity),
// so an alias and its canonical form are caught as duplicates and a
// parameter assignment reaches its component through either spelling.
// Every failure wraps errs.ErrBadParam; assignments naming a component
// outside the selected set are rejected so typos fail loudly.
func ParseSelections(owner, noun string, canonical func(string) string, names string, kvs []string) ([]Selection, error) {
	if canonical == nil {
		canonical = func(s string) string { return s }
	}
	var set []Selection
	index := map[string]int{}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, errs.BadParamf("%s: empty %s name in %q", owner, noun, names)
		}
		key := canonical(name)
		if _, dup := index[key]; dup {
			return nil, errs.BadParamf("%s: duplicate %s %q in %q", owner, noun, name, names)
		}
		index[key] = len(set)
		set = append(set, Selection{Name: name})
	}
	for _, kv := range kvs {
		full, v, err := ParseKV(kv)
		if err != nil {
			return nil, err
		}
		component, param, ok := strings.Cut(full, ".")
		if !ok || component == "" || param == "" {
			return nil, errs.BadParamf("%s: want %s.param=value, got %q", owner, noun, kv)
		}
		i, ok := index[canonical(component)]
		if !ok {
			return nil, errs.BadParamf("%s: parameter %q names %s %q outside the selected set", owner, kv, noun, component)
		}
		if set[i].Params == nil {
			set[i].Params = Params{}
		}
		set[i].Params[param] = v
	}
	return set, nil
}
