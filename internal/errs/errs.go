// Package errs defines the sentinel errors shared by every layer of the
// repository, so callers can classify failures with errors.Is instead of
// string matching. Generators wrap parameter-validation failures with
// ErrBadParam and unsatisfiable instances with ErrInfeasible; the
// scenario engine and every context-aware long-running path wrap
// cancellation with ErrCanceled.
package errs

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors. Wrap them with fmt.Errorf("...: %w", ...) so callers
// can test with errors.Is.
var (
	// ErrBadParam marks an invalid or out-of-range parameter value.
	ErrBadParam = errors.New("bad parameter")
	// ErrCanceled marks work abandoned because its context was canceled
	// or its deadline expired.
	ErrCanceled = errors.New("canceled")
	// ErrInfeasible marks a well-formed instance that admits no solution
	// (e.g. a degree cap too tight to attach an arrival).
	ErrInfeasible = errors.New("infeasible")
)

// BadParamf builds an ErrBadParam-wrapping error with a formatted
// description.
func BadParamf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrBadParam)...)
}

// Infeasiblef builds an ErrInfeasible-wrapping error with a formatted
// description.
func Infeasiblef(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrInfeasible)...)
}

// Ctx reports whether ctx is done, wrapping the cause in ErrCanceled.
// Long-running loops call it at iteration boundaries; it returns nil
// while the context is live.
func Ctx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if cause := ctx.Err(); cause != nil {
		return fmt.Errorf("%w: %v", ErrCanceled, cause)
	}
	return nil
}
