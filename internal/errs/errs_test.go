package errs

import (
	"context"
	"errors"
	"testing"
)

func TestWrapHelpers(t *testing.T) {
	err := BadParamf("gen: n = %d", -1)
	if !errors.Is(err, ErrBadParam) {
		t.Fatalf("BadParamf result does not match ErrBadParam: %v", err)
	}
	if got := err.Error(); got != "gen: n = -1: bad parameter" {
		t.Fatalf("unexpected message %q", got)
	}
	if !errors.Is(Infeasiblef("no attachment for node %d", 7), ErrInfeasible) {
		t.Fatal("Infeasiblef result does not match ErrInfeasible")
	}
}

func TestCtx(t *testing.T) {
	if err := Ctx(context.Background()); err != nil {
		t.Fatalf("live context reported %v", err)
	}
	if err := Ctx(nil); err != nil { //nolint:staticcheck // nil tolerance is part of the contract
		t.Fatalf("nil context reported %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Ctx(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled context gave %v, want ErrCanceled", err)
	}
}
