// Package trafficreg is the traffic-demand mirror of the generator,
// metric and attack registries (internal/scenario, internal/metricreg,
// internal/attackreg): every demand model the performance harness can
// route is registered by name with typed, validated, JSON-serializable
// parameters. The paper's §2.2 makes traffic the canonical input of
// topology evaluation — "a natural approach to traffic demand is based
// on population centers dispersed over a geographic region" — and this
// package makes the demand model a first-class, parameterized stage
// rather than a hardcoded gravity call.
//
// A DemandModel turns a Geography (population centers with locations)
// into a symmetric city-to-city DemandMatrix, deterministically from
// its resolved parameters and a seed. Consumers span the stack: the ISP
// provisioner and the peering optimizer generate inter-metro demand
// through it, and the scenario engine's traffic stage evaluates any
// generated topology by lifting its nodes into a pseudo-geography
// (SiteGeography) and allocating the resulting demands max-min fairly.
package trafficreg

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/errs"
	"repro/internal/params"
	"repro/internal/traffic"
)

// Params carries demand-model arguments by name (the shared
// internal/params machinery, also under the other three registries).
// Values are float64 — the JSON number type — so a Params map
// round-trips through JSON verbatim.
type Params = params.Params

// ParamSpec declares one named demand-model parameter: its kind,
// default, and optional closed bounds.
type ParamSpec = params.Spec

// DemandModel is one registered traffic-demand model: a name, a typed
// parameter interface, and a matrix-generation function.
type DemandModel interface {
	// Name is the registry key (e.g. "gravity", "zipf-hotspot").
	Name() string
	// Params declares the accepted parameters with kinds, defaults and
	// bounds.
	Params() []params.Spec
	// Generate builds the symmetric city-to-city demand matrix for geo,
	// deterministically from the resolved params and seed.
	// Implementations check ctx at iteration boundaries of superlinear
	// work and return an errs.ErrCanceled-wrapping error once it is
	// done.
	Generate(ctx context.Context, geo *traffic.Geography, p params.Params, seed int64) (traffic.DemandMatrix, error)
}

// Selection names one demand model with optional parameters; it
// round-trips through JSON and is the unit scenario.TrafficSpec, the
// ISP/peering configs, and the CLIs validate against the registry (the
// shared internal/params shape, also under the other registries).
type Selection = params.Selection

// Resolve validates user-supplied params against the model's specs and
// returns a complete parameter set with defaults filled in, wrapping
// errs.ErrBadParam on unknown names, non-integral Int values and
// out-of-bounds values.
func Resolve(m DemandModel, p params.Params) (params.Params, error) {
	return params.Resolve(fmt.Sprintf("trafficreg: model %q", m.Name()), m.Params(), p)
}

// aliases maps historical spellings onto canonical registry names. The
// empty name resolves to gravity — the paper's canonical demand model —
// so a zero Selection reproduces the pre-registry hardcoded behavior.
var aliases = map[string]string{
	"": "gravity",
}

// Canonical maps a possibly-aliased model name to its registry key.
// Unknown names pass through unchanged (Lookup reports them).
func Canonical(name string) string {
	if c, ok := aliases[name]; ok {
		return c
	}
	return name
}

// Registry maps demand-model names to DemandModels. The zero value is
// ready to use; Default() holds every built-in model.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]DemandModel
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a model, rejecting duplicate or empty names.
func (r *Registry) Register(m DemandModel) error {
	name := m.Name()
	if name == "" {
		return errs.BadParamf("trafficreg: model with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName == nil {
		r.byName = map[string]DemandModel{}
	}
	if _, dup := r.byName[name]; dup {
		return errs.BadParamf("trafficreg: model %q already registered", name)
	}
	r.byName[name] = m
	return nil
}

// Lookup resolves a model by name (aliases included; "" is gravity),
// wrapping errs.ErrBadParam for unknown names.
func (r *Registry) Lookup(name string) (DemandModel, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.byName[Canonical(name)]
	if !ok {
		return nil, errs.BadParamf("trafficreg: unknown demand model %q (have %v)", name, r.namesLocked())
	}
	return m, nil
}

// Names lists every registered model name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry holding every built-in
// demand model (and anything added through Register).
func Default() *Registry { return defaultRegistry }

// Register adds a model to the default registry.
func Register(m DemandModel) error { return defaultRegistry.Register(m) }

// Lookup resolves a name (aliases included) in the default registry.
func Lookup(name string) (DemandModel, error) { return defaultRegistry.Lookup(name) }

// Names lists the default registry, sorted.
func Names() []string { return defaultRegistry.Names() }

// FuncModel adapts a parameter-spec list plus a generation function
// into a DemandModel; it is how every built-in model is registered and
// the easiest way to add external ones.
type FuncModel struct {
	ModelName   string
	ModelParams []params.Spec
	Fn          func(ctx context.Context, geo *traffic.Geography, p params.Params, seed int64) (traffic.DemandMatrix, error)
}

// Name implements DemandModel.
func (f *FuncModel) Name() string { return f.ModelName }

// Params implements DemandModel.
func (f *FuncModel) Params() []params.Spec {
	out := make([]params.Spec, len(f.ModelParams))
	copy(out, f.ModelParams)
	return out
}

// Generate implements DemandModel.
func (f *FuncModel) Generate(ctx context.Context, geo *traffic.Geography, p params.Params, seed int64) (traffic.DemandMatrix, error) {
	return f.Fn(ctx, geo, p, seed)
}

// GenerateDemand resolves sel in the registry, validates its params,
// and generates the demand matrix for geo — the one-call path the
// ISP/peering layers and the scenario engine use. A zero Selection
// runs gravity with its defaults (the paper's §2.2 canonical model,
// numerically identical to the pre-registry hardcoded call).
func (r *Registry) GenerateDemand(ctx context.Context, geo *traffic.Geography, sel Selection, seed int64) (traffic.DemandMatrix, error) {
	if geo == nil {
		return nil, errs.BadParamf("trafficreg: missing geography")
	}
	m, err := r.Lookup(sel.Name)
	if err != nil {
		return nil, err
	}
	resolved, err := Resolve(m, sel.Params)
	if err != nil {
		return nil, err
	}
	return m.Generate(ctx, geo, resolved, seed)
}

// GenerateDemand generates with the default registry.
func GenerateDemand(ctx context.Context, geo *traffic.Geography, sel Selection, seed int64) (traffic.DemandMatrix, error) {
	return defaultRegistry.GenerateDemand(ctx, geo, sel, seed)
}

// FormatModels writes a human-readable listing of every registered
// demand model and its parameters (sorted by name), prefixing each
// parameter line with paramPrefix — CLIs share this for their -list
// flags.
func (r *Registry) FormatModels(w io.Writer, paramPrefix string) {
	for _, name := range r.Names() {
		m, err := r.Lookup(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "%s\n", name)
		specs := m.Params()
		sort.Slice(specs, func(a, b int) bool { return specs[a].Name < specs[b].Name })
		for _, s := range specs {
			fmt.Fprintf(w, "  %s%s.%s=<%s>  (default %g)  %s\n", paramPrefix, name, s.Name, s.Kind, s.Default, s.Help)
		}
	}
}

// ParseSelections builds a demand-model set from a comma-separated name
// list plus "model.param=value" assignments (the CLI flag syntax, via
// the shared internal/params parser). Every failure wraps
// errs.ErrBadParam; assignments naming a model outside the selected set
// are rejected so typos fail loudly.
func ParseSelections(names string, kvs []string) ([]Selection, error) {
	return params.ParseSelections("trafficreg", "model", Canonical, names, kvs)
}
