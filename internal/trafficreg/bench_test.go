package trafficreg

import (
	"context"
	"testing"

	"repro/internal/traffic"
)

// BenchmarkDemandGeneration measures registry-driven matrix generation
// per built-in model on a 100-city geography — the demand half of the
// provisioning hot path.
func BenchmarkDemandGeneration(b *testing.B) {
	geo, err := traffic.GenerateGeography(traffic.GeographyConfig{
		NumCities: 100, Seed: 1, ZipfExponent: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := GenerateDemand(context.Background(), geo, Selection{Name: name}, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
