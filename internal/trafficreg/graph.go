package trafficreg

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/errs"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/traffic"
)

// SiteGeography lifts a topology into the demand models' input domain:
// the k highest-degree nodes (ties to the lowest node id) become
// traffic sites at their node coordinates, with population proportional
// to degree+1 — hubs play the role of the big cities, matching the
// §2.1 economics that concentrate customers there. Sites are ordered by
// descending population so rank-based models (zipf-hotspot, bimodal,
// single-epicenter) see the same convention as a generated geography.
// The returned slice maps site index to node id.
func SiteGeography(g *graph.Graph, k int) (*traffic.Geography, []int) {
	n := g.NumNodes()
	if k <= 0 || k > n {
		k = n
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		da, db := g.Degree(ids[a]), g.Degree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	ids = ids[:k]
	geo := &traffic.Geography{Region: geom.UnitSquare}
	for rank, id := range ids {
		nd := g.Node(id)
		geo.Cities = append(geo.Cities, traffic.City{
			Name:       fmt.Sprintf("site-%02d", rank),
			Loc:        geom.Point{X: nd.X, Y: nd.Y},
			Population: float64(g.Degree(id) + 1),
		})
	}
	return geo, ids
}

// EnsureCapacities returns a topology whose every edge has positive
// capacity: g itself when that already holds (or when def <= 0),
// otherwise a clone with def substituted for each non-positive
// capacity. Generated-but-unprovisioned topologies carry zero
// capacities, which would starve any allocation; the traffic stage
// evaluates them as unit-capacity networks instead.
func EnsureCapacities(g *graph.Graph, def float64) *graph.Graph {
	if def <= 0 {
		return g
	}
	ok := true
	for _, e := range g.Edges() {
		if e.Capacity <= 0 {
			ok = false
			break
		}
	}
	if ok {
		return g
	}
	clone := g.Clone()
	for i := range clone.Edges() {
		if e := clone.Edge(i); e.Capacity <= 0 {
			e.Capacity = def
		}
	}
	return clone
}

// PrepareGraphTraffic is the shared front half of evaluating a topology
// under a demand model (the scenario traffic stage and `topostats
// -traffic` both go through it): sites is clamped to the node count,
// unprovisioned edges get capacity (<= 0 keeps raw zeros, 1 is the
// conventional default), and sel's demands are generated over the
// resulting topology. The returned graph is g itself unless capacities
// were substituted; the demand slice is never nil, so it can feed a
// metric source directly.
func PrepareGraphTraffic(ctx context.Context, g *graph.Graph, sel Selection, sites int, capacity float64, seed int64) (*graph.Graph, []routing.Demand, int, error) {
	if n := g.NumNodes(); sites <= 0 || sites > n {
		sites = n
	}
	eval := EnsureCapacities(g, capacity)
	demands, err := GraphDemands(ctx, eval, sel, sites, seed)
	if err != nil {
		return nil, nil, 0, err
	}
	if demands == nil {
		demands = []routing.Demand{}
	}
	return eval, demands, sites, nil
}

// GraphDemands generates sel's demand matrix over the topology's site
// geography and flattens it into per-pair routing demands: one demand
// per unordered site pair with positive offered volume, in ascending
// (site i, site j) order so the demand list — and everything allocated
// from it — is deterministic. sites <= 0 or sites > n uses every node.
func GraphDemands(ctx context.Context, g *graph.Graph, sel Selection, sites int, seed int64) ([]routing.Demand, error) {
	if g.NumNodes() < 2 {
		return nil, nil
	}
	geo, ids := SiteGeography(g, sites)
	dm, err := GenerateDemand(ctx, geo, sel, seed)
	if err != nil {
		return nil, err
	}
	var out []routing.Demand
	for i := range ids {
		if err := errs.Ctx(ctx); err != nil {
			return nil, err
		}
		for j := i + 1; j < len(ids); j++ {
			if v := dm[i][j]; v > 0 {
				out = append(out, routing.Demand{Src: ids[i], Dst: ids[j], Volume: v})
			}
		}
	}
	return out, nil
}
