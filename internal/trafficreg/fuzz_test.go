package trafficreg

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/errs"
	"repro/internal/traffic"
)

// FuzzParseSelections asserts the CLI-facing parser never panics and
// classifies every rejection as ErrBadParam, mirroring the metricreg
// and attackreg fuzzers.
func FuzzParseSelections(f *testing.F) {
	f.Add("gravity", "gravity.scale=2")
	f.Add("gravity,uniform", "uniform.volume=1")
	f.Add("", "")
	f.Add("zipf-hotspot", "zipf-hotspot.exponent=abc")
	f.Add("a,b,c", "a.x=1")
	f.Fuzz(func(t *testing.T, names, kv string) {
		var kvs []string
		if kv != "" {
			kvs = strings.Split(kv, ";")
		}
		set, err := ParseSelections(names, kvs)
		if err != nil {
			if !errors.Is(err, errs.ErrBadParam) {
				t.Fatalf("ParseSelections(%q, %q) error %v does not wrap ErrBadParam", names, kv, err)
			}
			return
		}
		// Whatever parsed must survive registry validation or fail as
		// ErrBadParam — never panic.
		geo := &traffic.Geography{Cities: []traffic.City{{Population: 1}, {Population: 2}}}
		for _, sel := range set {
			if _, err := GenerateDemand(context.Background(), geo, sel, 1); err != nil &&
				!errors.Is(err, errs.ErrBadParam) {
				t.Fatalf("GenerateDemand(%+v) error %v does not wrap ErrBadParam", sel, err)
			}
		}
	})
}

// FuzzLookupResolve asserts arbitrary names and parameter values can
// never panic the registry.
func FuzzLookupResolve(f *testing.F) {
	f.Add("gravity", "scale", 2.0)
	f.Add("", "exponent", -1.0)
	f.Add("bimodal", "topfrac", 2.0)
	f.Fuzz(func(t *testing.T, name, param string, v float64) {
		m, err := Lookup(name)
		if err != nil {
			if !errors.Is(err, errs.ErrBadParam) {
				t.Fatalf("Lookup(%q) error %v does not wrap ErrBadParam", name, err)
			}
			return
		}
		if _, err := Resolve(m, Params{param: v}); err != nil && !errors.Is(err, errs.ErrBadParam) {
			t.Fatalf("Resolve(%q, {%q: %v}) error %v does not wrap ErrBadParam", name, param, v, err)
		}
	})
}
