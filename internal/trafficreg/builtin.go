package trafficreg

import (
	"context"
	"math"

	"repro/internal/errs"
	"repro/internal/params"
	"repro/internal/traffic"
)

// Built-in demand models. All of them are deterministic in (geography,
// params); the seed is threaded for future randomized models. Every
// matrix is symmetric with a zero diagonal, and an all-zero-population
// geography yields an all-zero matrix (never NaN).
func init() {
	for _, m := range builtins() {
		if err := Register(m); err != nil {
			panic(err)
		}
	}
}

func fptr(v float64) *float64 { return &v }

// newMatrix allocates an n x n zero matrix.
func newMatrix(n int) traffic.DemandMatrix {
	m := make(traffic.DemandMatrix, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

// fillSymmetric evaluates f over unordered city pairs, checking ctx
// once per row.
func fillSymmetric(ctx context.Context, n int, m traffic.DemandMatrix, f func(i, j int) float64) error {
	for i := 0; i < n; i++ {
		if err := errs.Ctx(ctx); err != nil {
			return err
		}
		for j := i + 1; j < n; j++ {
			v := f(i, j)
			m[i][j] = v
			m[j][i] = v
		}
	}
	return nil
}

func builtins() []DemandModel {
	return []DemandModel{
		&FuncModel{
			// The paper's canonical §2.2 model; defaults reproduce the
			// previously hardcoded GravityConfig{Scale: 1, Exponent: 1}
			// exactly.
			ModelName: "gravity",
			ModelParams: []params.Spec{
				{Name: "scale", Kind: params.Float, Default: 1, Min: fptr(0), Help: "overall traffic volume multiplier (0 = no traffic)"},
				{Name: "exponent", Kind: params.Float, Default: 1, Min: fptr(0), Help: "distance-decay power (0 disables decay)"},
				{Name: "epsilon", Kind: params.Float, Default: 0.01, Min: fptr(1e-9), Help: "distance floor for co-located cities"},
			},
			Fn: func(ctx context.Context, geo *traffic.Geography, p params.Params, _ int64) (traffic.DemandMatrix, error) {
				if err := errs.Ctx(ctx); err != nil {
					return nil, err
				}
				// GravityDemand coerces Scale <= 0 to 1, so a validated
				// scale of 0 is honored by generating at 1 and scaling
				// outside (skipped at the default, keeping the
				// hardcoded-parity contract bit-for-bit).
				m := traffic.GravityDemand(geo, traffic.GravityConfig{
					Scale:    1,
					Exponent: p.Float("exponent"),
					Epsilon:  p.Float("epsilon"),
				})
				if scale := p.Float("scale"); scale != 1 {
					for i := range m {
						for j := range m[i] {
							m[i][j] *= scale
						}
					}
				}
				return m, nil
			},
		},
		&FuncModel{
			// Population-blind baseline: every distinct pair offers the
			// same volume, the demand analogue of the descriptive
			// generators the paper argues against.
			ModelName: "uniform",
			ModelParams: []params.Spec{
				{Name: "volume", Kind: params.Float, Default: 1, Min: fptr(0), Help: "offered volume per city pair"},
			},
			Fn: func(ctx context.Context, geo *traffic.Geography, p params.Params, _ int64) (traffic.DemandMatrix, error) {
				n := len(geo.Cities)
				m := newMatrix(n)
				vol := p.Float("volume")
				err := fillSymmetric(ctx, n, m, func(int, int) float64 { return vol })
				return m, err
			},
		},
		&FuncModel{
			// Rank-skewed hotspots: demand follows a Zipf law over city
			// ranks instead of raw populations, concentrating traffic on
			// the top cities even harder than gravity does (§2.1: "most
			// customers reside in the big cities").
			ModelName: "zipf-hotspot",
			ModelParams: []params.Spec{
				{Name: "scale", Kind: params.Float, Default: 1, Min: fptr(0), Help: "overall traffic volume multiplier"},
				{Name: "exponent", Kind: params.Float, Default: 1, Min: fptr(0), Help: "Zipf exponent over population ranks"},
			},
			Fn: func(ctx context.Context, geo *traffic.Geography, p params.Params, _ int64) (traffic.DemandMatrix, error) {
				n := len(geo.Cities)
				m := newMatrix(n)
				// Cities are population-sorted (rank = index + 1); the
				// weights are normalized so total demand tracks scale
				// regardless of n.
				w := make([]float64, n)
				sum := 0.0
				for i := range w {
					w[i] = math.Pow(float64(i+1), -p.Float("exponent"))
					sum += w[i]
				}
				for i := range w {
					w[i] /= sum
				}
				scale := p.Float("scale")
				err := fillSymmetric(ctx, n, m, func(i, j int) float64 {
					return scale * w[i] * w[j]
				})
				return m, err
			},
		},
		&FuncModel{
			// Peak/off-peak population-product demand: pairs within the
			// top population tier exchange traffic at the peak rate,
			// everything else at the off-peak rate — a two-level diurnal
			// abstraction.
			ModelName: "bimodal",
			ModelParams: []params.Spec{
				{Name: "peak", Kind: params.Float, Default: 1, Min: fptr(0), Help: "volume multiplier between top-tier cities"},
				{Name: "offpeak", Kind: params.Float, Default: 0.25, Min: fptr(0), Help: "volume multiplier for all other pairs"},
				{Name: "topfrac", Kind: params.Float, Default: 0.2, Min: fptr(0), Max: fptr(1), Help: "fraction of cities in the top tier"},
			},
			Fn: func(ctx context.Context, geo *traffic.Geography, p params.Params, _ int64) (traffic.DemandMatrix, error) {
				n := len(geo.Cities)
				m := newMatrix(n)
				popTotal := geo.TotalPopulation()
				if popTotal <= 0 {
					return m, errs.Ctx(ctx)
				}
				top := int(math.Ceil(p.Float("topfrac") * float64(n)))
				peak, off := p.Float("peak"), p.Float("offpeak")
				err := fillSymmetric(ctx, n, m, func(i, j int) float64 {
					rate := off
					if i < top && j < top { // cities are population-sorted
						rate = peak
					}
					return rate * geo.Cities[i].Population * geo.Cities[j].Population / (popTotal * popTotal)
				})
				return m, err
			},
		},
		&FuncModel{
			// All traffic flows between one epicenter city and everyone
			// else — a content-hub / disaster-coordination pattern that
			// stresses the provisioning around a single metro.
			ModelName: "single-epicenter",
			ModelParams: []params.Spec{
				{Name: "scale", Kind: params.Float, Default: 1, Min: fptr(0), Help: "overall traffic volume multiplier"},
				{Name: "city", Kind: params.Int, Default: 0, Min: fptr(0), Help: "epicenter city index (0 = most populous)"},
			},
			Fn: func(ctx context.Context, geo *traffic.Geography, p params.Params, _ int64) (traffic.DemandMatrix, error) {
				n := len(geo.Cities)
				epi := p.Int("city")
				if epi >= n {
					return nil, errs.BadParamf("trafficreg: single-epicenter city %d out of range (have %d cities)", epi, n)
				}
				m := newMatrix(n)
				popTotal := geo.TotalPopulation()
				if popTotal <= 0 {
					return m, errs.Ctx(ctx)
				}
				scale := p.Float("scale")
				err := fillSymmetric(ctx, n, m, func(i, j int) float64 {
					if i != epi && j != epi {
						return 0
					}
					other := i
					if other == epi {
						other = j
					}
					return scale * geo.Cities[other].Population / popTotal
				})
				return m, err
			},
		},
	}
}
