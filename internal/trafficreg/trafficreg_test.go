package trafficreg

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/errs"
	"repro/internal/gen"
	"repro/internal/traffic"
)

func testGeo(t *testing.T, n int, seed int64) *traffic.Geography {
	t.Helper()
	g, err := traffic.GenerateGeography(traffic.GeographyConfig{
		NumCities: n, Seed: seed, ZipfExponent: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNamesSortedAndComplete(t *testing.T) {
	want := []string{"bimodal", "gravity", "single-epicenter", "uniform", "zipf-hotspot"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

// TestGravityMatchesHardcodedDefaults pins the compatibility contract:
// a zero Selection generates exactly the matrix the pre-registry call
// sites hardcoded as GravityConfig{Scale: 1, Exponent: 1}.
func TestGravityMatchesHardcodedDefaults(t *testing.T) {
	geo := testGeo(t, 20, 7)
	got, err := GenerateDemand(context.Background(), geo, Selection{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := traffic.GravityDemand(geo, traffic.GravityConfig{Scale: 1, Exponent: 1})
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("demand[%d][%d] = %v, want hardcoded-gravity %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestModelsWellFormed checks every built-in over one geography:
// symmetric, zero diagonal, finite, non-negative.
func TestModelsWellFormed(t *testing.T) {
	geo := testGeo(t, 15, 3)
	for _, name := range Names() {
		m, err := GenerateDemand(context.Background(), geo, Selection{Name: name}, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(m) != 15 {
			t.Fatalf("%s: matrix size %d", name, len(m))
		}
		for i := range m {
			if m[i][i] != 0 {
				t.Fatalf("%s: nonzero self-demand at %d", name, i)
			}
			for j := range m[i] {
				v := m[i][j]
				if v != m[j][i] {
					t.Fatalf("%s: asymmetric at (%d,%d)", name, i, j)
				}
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: bad entry %v at (%d,%d)", name, v, i, j)
				}
			}
		}
		if m.Total() <= 0 {
			t.Fatalf("%s: no demand at all", name)
		}
	}
}

func TestUniformIsFlat(t *testing.T) {
	geo := testGeo(t, 8, 2)
	m, err := GenerateDemand(context.Background(), geo, Selection{
		Name: "uniform", Params: Params{"volume": 2.5},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		for j := range m[i] {
			if i != j && m[i][j] != 2.5 {
				t.Fatalf("uniform demand[%d][%d] = %v, want 2.5", i, j, m[i][j])
			}
		}
	}
}

func TestZipfHotspotConcentrates(t *testing.T) {
	geo := testGeo(t, 12, 4)
	m, err := GenerateDemand(context.Background(), geo, Selection{
		Name: "zipf-hotspot", Params: Params{"exponent": 1.5},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][1] <= m[10][11] {
		t.Fatalf("top pair %v not above tail pair %v", m[0][1], m[10][11])
	}
}

func TestBimodalTiers(t *testing.T) {
	// Equal populations isolate the peak/off-peak rates.
	geo := &traffic.Geography{}
	for i := 0; i < 10; i++ {
		geo.Cities = append(geo.Cities, traffic.City{Population: 1})
	}
	m, err := GenerateDemand(context.Background(), geo, Selection{
		Name: "bimodal", Params: Params{"peak": 4, "offpeak": 1, "topfrac": 0.2},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][1] != 4*m[0][5] {
		t.Fatalf("peak pair %v, off-peak pair %v, want 4x ratio", m[0][1], m[0][5])
	}
	if m[5][6] != m[0][5] {
		t.Fatalf("two off-peak pairs differ: %v vs %v", m[5][6], m[0][5])
	}
}

func TestSingleEpicenterShape(t *testing.T) {
	geo := testGeo(t, 9, 5)
	m, err := GenerateDemand(context.Background(), geo, Selection{
		Name: "single-epicenter", Params: Params{"city": 2},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		for j := range m[i] {
			if i == j {
				continue
			}
			touches := i == 2 || j == 2
			if touches && m[i][j] <= 0 {
				t.Fatalf("epicenter pair (%d,%d) has no demand", i, j)
			}
			if !touches && m[i][j] != 0 {
				t.Fatalf("non-epicenter pair (%d,%d) has demand %v", i, j, m[i][j])
			}
		}
	}
	if _, err := GenerateDemand(context.Background(), geo, Selection{
		Name: "single-epicenter", Params: Params{"city": 99},
	}, 1); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("out-of-range epicenter gave %v, want ErrBadParam", err)
	}
}

// TestGravityBoundaryParams pins the validated-parameter contract at
// the boundaries GravityDemand would silently coerce: scale=0 really
// means no traffic, and epsilon=0 (which would be coerced to 0.01) is
// rejected instead of ignored.
func TestGravityBoundaryParams(t *testing.T) {
	geo := testGeo(t, 8, 13)
	m, err := GenerateDemand(context.Background(), geo, Selection{
		Name: "gravity", Params: Params{"scale": 0},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() != 0 {
		t.Fatalf("gravity scale=0 generated total demand %v, want 0", m.Total())
	}
	m2, err := GenerateDemand(context.Background(), geo, Selection{
		Name: "gravity", Params: Params{"scale": 2},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := GenerateDemand(context.Background(), geo, Selection{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2.Total()-2*base.Total()) > 1e-12*base.Total() {
		t.Fatalf("gravity scale=2 total %v, want 2x default %v", m2.Total(), base.Total())
	}
	if _, err := GenerateDemand(context.Background(), geo, Selection{
		Name: "gravity", Params: Params{"epsilon": 0},
	}, 1); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("gravity epsilon=0 gave %v, want ErrBadParam (would be silently coerced)", err)
	}
}

func TestResolveRejectsBadParams(t *testing.T) {
	cases := []Selection{
		{Name: "nope"},
		{Name: "gravity", Params: Params{"bogus": 1}},
		{Name: "gravity", Params: Params{"scale": -1}},
		{Name: "bimodal", Params: Params{"topfrac": 1.5}},
		{Name: "single-epicenter", Params: Params{"city": 0.5}},
	}
	geo := testGeo(t, 5, 1)
	for i, sel := range cases {
		if _, err := GenerateDemand(context.Background(), geo, sel, 1); !errors.Is(err, errs.ErrBadParam) {
			t.Errorf("case %d gave %v, want ErrBadParam", i, err)
		}
	}
	if _, err := GenerateDemand(context.Background(), nil, Selection{}, 1); !errors.Is(err, errs.ErrBadParam) {
		t.Error("nil geography accepted")
	}
}

func TestSelectionJSONRoundTrip(t *testing.T) {
	sel := Selection{Name: "gravity", Params: Params{"scale": 2, "exponent": 0.5}}
	data, err := json.Marshal(sel)
	if err != nil {
		t.Fatal(err)
	}
	var back Selection
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	geo := testGeo(t, 10, 9)
	a, err := GenerateDemand(context.Background(), geo, sel, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDemand(context.Background(), geo, back, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("round-tripped selection generated a different matrix")
	}
}

func TestParseSelections(t *testing.T) {
	set, err := ParseSelections("gravity,uniform", []string{"gravity.scale=2", "uniform.volume=3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0].Params["scale"] != 2 || set[1].Params["volume"] != 3 {
		t.Fatalf("parsed %+v", set)
	}
	for _, bad := range [][2]any{
		{"gravity,,uniform", []string(nil)},
		{"gravity,gravity", []string(nil)},
		{"gravity", []string{"uniform.volume=3"}},
		{"gravity", []string{"notakv"}},
		{"gravity", []string{"scale=2"}},
	} {
		if _, err := ParseSelections(bad[0].(string), bad[1].([]string)); !errors.Is(err, errs.ErrBadParam) {
			t.Errorf("ParseSelections(%q, %v) gave %v, want ErrBadParam", bad[0], bad[1], err)
		}
	}
}

func TestGraphDemandsDeterministicAndRoutable(t *testing.T) {
	g, err := gen.BarabasiAlbert(60, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := GraphDemands(context.Background(), g, Selection{}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GraphDemands(context.Background(), g, Selection{}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GraphDemands not deterministic")
	}
	if len(a) == 0 {
		t.Fatal("no demands over a connected topology")
	}
	n := g.NumNodes()
	seen := map[[2]int]bool{}
	for _, d := range a {
		if d.Src < 0 || d.Src >= n || d.Dst < 0 || d.Dst >= n || d.Src == d.Dst {
			t.Fatalf("bad endpoints %+v", d)
		}
		if d.Volume <= 0 {
			t.Fatalf("non-positive volume %+v", d)
		}
		key := [2]int{d.Src, d.Dst}
		if seen[key] {
			t.Fatalf("duplicate pair %+v", d)
		}
		seen[key] = true
	}
	// Sites bound honored: 10 sites means at most C(10,2) pairs.
	if len(a) > 45 {
		t.Fatalf("%d demands from 10 sites, want <= 45", len(a))
	}
	// Tiny graphs yield no demands rather than errors.
	g1, err := gen.BarabasiAlbert(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GraphDemands(context.Background(), g1, Selection{}, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestSiteGeographyRanksByDegree(t *testing.T) {
	g, err := gen.BarabasiAlbert(80, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	geo, ids := SiteGeography(g, 12)
	if len(geo.Cities) != 12 || len(ids) != 12 {
		t.Fatalf("got %d cities, %d ids", len(geo.Cities), len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if g.Degree(ids[i]) > g.Degree(ids[i-1]) {
			t.Fatal("sites not ordered by descending degree")
		}
	}
	for i, id := range ids {
		if geo.Cities[i].Population != float64(g.Degree(id)+1) {
			t.Fatalf("site %d population %v, want degree+1 = %d", i, geo.Cities[i].Population, g.Degree(id)+1)
		}
	}
}

func TestRegisterCustomModel(t *testing.T) {
	reg := NewRegistry()
	m := &FuncModel{
		ModelName: "flat2",
		Fn: func(ctx context.Context, geo *traffic.Geography, _ Params, _ int64) (traffic.DemandMatrix, error) {
			n := len(geo.Cities)
			out := newMatrix(n)
			_ = fillSymmetric(ctx, n, out, func(int, int) float64 { return 2 })
			return out, nil
		},
	}
	if err := reg.Register(m); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(m); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("duplicate registration gave %v", err)
	}
	got, err := reg.GenerateDemand(context.Background(), testGeo(t, 4, 1), Selection{Name: "flat2"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][1] != 2 {
		t.Fatalf("custom model demand = %v", got[0][1])
	}
}
