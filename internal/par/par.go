// Package par is the shared worker-pool primitive under the parallel
// analysis layers (routing source fan-out, metric families, robustness
// trials, experiment replications). It is deliberately tiny: dynamic
// index claiming over a fixed goroutine count, first-panic propagation,
// and deterministic (lowest-index) error selection, so callers that
// reduce results in index order produce byte-identical output for any
// worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count for n independent work
// items: non-positive means GOMAXPROCS, and the result never exceeds n
// (or falls below 1).
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Split divides a worker budget between an outer fan-out over n
// independent items and an inner per-item parallel kernel, so the two
// levels compose without oversubscription: outer*inner never exceeds
// max(budget, 1) (budget <= 0 means GOMAXPROCS). The outer level is
// saturated first — outer = Workers(budget, n) — because independent
// items scale perfectly while intra-kernel sharding pays
// synchronization per level; the remainder budget/outer goes inward.
// With n >= budget this is (budget, 1): the classic flat fan-out. With
// few items and many cores — e.g. 4 sources on 32 cores — it yields
// (4, 8) so the leftover cores help inside each traversal instead of
// idling.
func Split(budget, n int) (outer, inner int) {
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	outer = Workers(budget, n)
	inner = budget / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// ForEach runs fn(i) for every i in [0, n), fanning the indices out
// across at most `workers` goroutines (<= 0 means GOMAXPROCS). Indices
// are claimed dynamically, so uneven item costs balance. A panic in any
// fn is re-raised in the caller after all workers stop.
func ForEach(workers, n int, fn func(i int)) {
	_ = ForEachErr(workers, n, func(i int) error {
		fn(i)
		return nil
	})
}

// ForEachErr is ForEach for fallible work. When one or more calls fail,
// the error of the lowest failing index is returned — a deterministic
// choice regardless of scheduling. Remaining indices are abandoned after
// the first observed failure (already-started calls finish).
func ForEachErr(workers, n int, fn func(i int) error) error {
	return ForEachWorkerErr(workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorkerErr is ForEachErr for work that wants worker-local state:
// fn additionally receives the index w in [0, Workers(workers, n)) of
// the goroutine running it. Calls with the same w never overlap, so
// callers can reserve one scratch resource per worker — e.g. a pooled
// graph.Workspace grown once to the sweep's node count — and a
// million-node fan-out does zero steady-state allocation instead of one
// pool round-trip per item. Results must still be reduced by item
// index: which items share a worker is scheduling-dependent.
func ForEachWorkerErr(workers, n int, fn func(w, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstI   = n
		firstE   error
		panicked any
	)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
					failed.Store(true)
				}
			}()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(w, i); err != nil {
					mu.Lock()
					if i < firstI {
						firstI, firstE = i, err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return firstE
}

// Do runs each fn concurrently on its own goroutine (bounded by the
// worker normalization) and waits for all of them. Use it for a fixed
// set of heterogeneous tasks, e.g. the metric families of a profile.
func Do(workers int, fns ...func()) {
	ForEach(workers, len(fns), func(i int) { fns[i]() })
}
