package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		n := 237
		var hits atomic.Int64
		seen := make([]atomic.Bool, n)
		ForEach(workers, n, func(i int) {
			hits.Add(1)
			if seen[i].Swap(true) {
				t.Errorf("workers=%d: index %d run twice", workers, i)
			}
		})
		if int(hits.Load()) != n {
			t.Fatalf("workers=%d: ran %d of %d items", workers, hits.Load(), n)
		}
	}
}

func TestForEachErrLowestIndexWins(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		err := ForEachErr(workers, 50, func(i int) error {
			if i%10 == 3 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Fatalf("workers=%d: got %v, want fail at 3", workers, err)
		}
	}
}

func TestForEachErrNilOnSuccess(t *testing.T) {
	if err := ForEachErr(4, 20, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEachErr(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal("n=0 should never call fn")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic was swallowed")
		}
	}()
	ForEach(4, 10, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8,3) = %d", got)
	}
	if got := Workers(2, 100); got != 2 {
		t.Fatalf("Workers(2,100) = %d", got)
	}
	if got := Workers(0, 100); got < 1 {
		t.Fatalf("Workers(0,100) = %d", got)
	}
	if got := Workers(-3, 0); got != 1 {
		t.Fatalf("Workers(-3,0) = %d", got)
	}
}

func TestSplitBudget(t *testing.T) {
	cases := []struct {
		budget, n    int
		outer, inner int
	}{
		{8, 100, 8, 1}, // plenty of items: flat fan-out
		{8, 8, 8, 1},
		{8, 4, 4, 2}, // few items: leftover budget goes inward
		{8, 3, 3, 2}, // remainder floors: 3*2 <= 8
		{8, 1, 1, 8}, // single item: all budget inside the kernel
		{1, 100, 1, 1},
		{4, 0, 1, 4}, // no items: degenerate but bounded
		{7, 2, 2, 3}, // 2*3 <= 7
	}
	for _, tc := range cases {
		outer, inner := Split(tc.budget, tc.n)
		if outer != tc.outer || inner != tc.inner {
			t.Errorf("Split(%d,%d) = (%d,%d), want (%d,%d)",
				tc.budget, tc.n, outer, inner, tc.outer, tc.inner)
		}
		if outer*inner > tc.budget && tc.budget >= 1 {
			t.Errorf("Split(%d,%d) oversubscribes: %d*%d > budget",
				tc.budget, tc.n, outer, inner)
		}
	}
	// budget <= 0 resolves to GOMAXPROCS; just pin the invariants.
	outer, inner := Split(0, 3)
	if outer < 1 || inner < 1 {
		t.Fatalf("Split(0,3) = (%d,%d)", outer, inner)
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c atomic.Bool
	Do(0, func() { a.Store(true) }, func() { b.Store(true) }, func() { c.Store(true) })
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("Do skipped a task")
	}
}

func TestForEachWorkerErrWorkerIndexBounds(t *testing.T) {
	const workers, n = 4, 100
	var hits [workers]atomic.Int64
	err := ForEachWorkerErr(workers, n, func(w, i int) error {
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of [0,%d)", w, workers)
		}
		hits[w].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for i := range hits {
		total += hits[i].Load()
	}
	if total != n {
		t.Fatalf("ran %d items, want %d", total, n)
	}
}

// TestForEachWorkerErrNoOverlap asserts the per-worker serialization
// contract: calls that share a worker index never run concurrently, so a
// worker-indexed scratch resource needs no locking.
func TestForEachWorkerErrNoOverlap(t *testing.T) {
	const workers, n = 4, 200
	var busy [workers]atomic.Bool
	err := ForEachWorkerErr(workers, n, func(w, i int) error {
		if !busy[w].CompareAndSwap(false, true) {
			return fmt.Errorf("worker %d re-entered concurrently", w)
		}
		defer busy[w].Store(false)
		runtime.Gosched()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForEachWorkerErrSequentialFallback(t *testing.T) {
	var order []int
	err := ForEachWorkerErr(1, 5, func(w, i int) error {
		if w != 0 {
			t.Fatalf("sequential path got worker %d", w)
		}
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order %v", order)
		}
	}
}

func TestForEachWorkerErrLowestError(t *testing.T) {
	want := errors.New("lowest")
	err := ForEachWorkerErr(4, 50, func(w, i int) error {
		switch i {
		case 3:
			return want
		case 7, 20:
			return errors.New("higher")
		}
		return nil
	})
	if !errors.Is(err, want) && err != nil && err.Error() != "lowest" {
		t.Fatalf("got %v, want lowest-index error", err)
	}
	if err == nil {
		t.Fatal("expected an error")
	}
}
