// Package service hosts one shared scenario.Engine behind an HTTP/JSON
// job API — the resident counterpart to the one-shot toposcenario CLI.
// A Server owns a bounded job queue drained by a fixed executor pool;
// submitted specs are the existing scenario JSON round-trip format (a
// single object, an array, or {"scenarios": [...]}), so anything the
// CLI runs locally can be mailed to a daemon unchanged and the results
// come back byte-identical.
//
// Endpoints:
//
//	POST   /v1/jobs      submit a spec document -> 202 {"id": "job-N", ...}
//	GET    /v1/jobs      list job statuses (without results)
//	GET    /v1/jobs/{id} poll one job; running jobs stream the contiguous
//	                     completed replication prefix per scenario
//	DELETE /v1/jobs/{id} cancel (queued or running)
//	GET    /v1/registry  models/metrics/attacks/traffic with param specs
//	GET    /v1/statusz   uptime, snapshot-cache counters, job counters
//
// Validation failures map to 400 and always wrap errs.ErrBadParam; a
// full queue maps to 429; a draining server refuses new work with 503.
// Shutdown stops intake, drains queued and running jobs, and — if its
// context expires first — cancels in-flight engine work through the
// threaded context.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/attackreg"
	"repro/internal/errs"
	"repro/internal/metricreg"
	"repro/internal/params"
	"repro/internal/scenario"
	"repro/internal/trafficreg"
)

// maxSpecBytes bounds a submitted spec document; anything larger is a
// bad request, not an allocation.
const maxSpecBytes = 8 << 20

// Job states. A job is terminal in StateDone, StateFailed, or
// StateCanceled.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Terminal reports whether state is one a job never leaves.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// JobStatus is the wire representation of one job.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Scenarios and Reps describe the submitted work: scenario count
	// and total (scenario, replication) units.
	Scenarios int `json:"scenarios"`
	Reps      int `json:"reps"`
	// Completed counts finished units. It reaches Reps only on done.
	Completed int `json:"completed"`
	// Error carries the failure or cancellation cause on terminal
	// non-done states.
	Error string `json:"error,omitempty"`
	// Results holds per-scenario output in submission order. While the
	// job runs it is the deterministically-streamed view: each
	// scenario's Reps is the contiguous prefix of completed
	// replications (later out-of-order completions stay hidden until
	// the gap fills). Terminal states carry the engine's final results
	// — trimmed and marked Partial on failure or cancellation. The list
	// endpoint omits it.
	Results []*scenario.Result `json:"results,omitempty"`
}

// JobStats aggregates job counters for statusz.
type JobStats struct {
	Submitted int `json:"submitted"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
}

// Statusz is the monitoring snapshot.
type Statusz struct {
	UptimeSeconds float64             `json:"uptime_seconds"`
	Draining      bool                `json:"draining"`
	Cache         scenario.CacheStats `json:"cache"`
	Jobs          JobStats            `json:"jobs"`
}

// ComponentInfo is one registered component: its canonical name and
// declared parameter interface.
type ComponentInfo struct {
	Name   string        `json:"name"`
	Params []params.Spec `json:"params,omitempty"`
}

// RegistryInfo enumerates everything a scenario spec can name.
type RegistryInfo struct {
	Models  []ComponentInfo `json:"models"`
	Metrics []ComponentInfo `json:"metrics"`
	Attacks []ComponentInfo `json:"attacks"`
	Traffic []ComponentInfo `json:"traffic"`
}

// Config tunes a Server. The zero value is usable: a default engine, a
// 64-deep queue, and two executors.
type Config struct {
	// Engine is the shared engine all jobs run on (nil means a fresh
	// NewEngine(nil)).
	Engine *scenario.Engine
	// MaxQueue bounds jobs accepted but not yet running (default 64).
	MaxQueue int
	// Executors is the number of jobs run concurrently (default 2; a
	// negative value starts none, for tests that need jobs to stay
	// queued).
	Executors int
	// JobWorkers is the engine worker bound per job (scenario.Options.
	// Workers; <= 0 means GOMAXPROCS).
	JobWorkers int
	// JobTimeout bounds one job's execution (0 = no limit).
	JobTimeout time.Duration
}

// job is the server-side state of one submission.
type job struct {
	id    string
	specs []scenario.Scenario

	mu        sync.Mutex
	state     string
	err       error
	cancel    context.CancelFunc // non-nil only while running
	reps      [][]scenario.RepResult
	done      [][]bool
	completed int
	total     int
	final     []*scenario.Result // set on terminal states that ran
}

// progress records one completed unit; the engine calls it from worker
// goroutines.
func (j *job) progress(si, rep int, rr scenario.RepResult) {
	j.mu.Lock()
	j.reps[si][rep] = rr
	j.done[si][rep] = true
	j.completed++
	j.mu.Unlock()
}

// status snapshots the job. includeResults selects between the cheap
// listing form and the full polling form.
func (j *job) status(includeResults bool) *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{
		ID:        j.id,
		State:     j.state,
		Scenarios: len(j.specs),
		Reps:      j.total,
		Completed: j.completed,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !includeResults {
		return st
	}
	switch {
	case j.final != nil:
		st.Results = j.final
	case j.state == StateRunning:
		// Stream the contiguous completed prefix per scenario — the
		// same deterministic trimming the engine applies to cut-short
		// batches, so pollers see replications in order regardless of
		// worker scheduling.
		st.Results = make([]*scenario.Result, len(j.specs))
		for si := range j.specs {
			k := 0
			for k < len(j.done[si]) && j.done[si][k] {
				k++
			}
			st.Results[si] = &scenario.Result{
				Scenario: j.specs[si],
				Reps:     append([]scenario.RepResult(nil), j.reps[si][:k]...),
			}
		}
	}
	return st
}

// Server hosts one engine behind the job API. Create with New; it
// implements http.Handler.
type Server struct {
	eng        *scenario.Engine
	jobWorkers int
	jobTimeout time.Duration
	mux        *http.ServeMux
	started    time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	nextID   int
	queue    chan *job
	draining bool
	wg       sync.WaitGroup // executors
}

// New builds a Server over cfg and starts its executor pool.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		cfg.Engine = scenario.NewEngine(nil)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	executors := cfg.Executors
	if executors == 0 {
		executors = 2
	}
	if executors < 0 {
		executors = 0
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		eng:        cfg.Engine,
		jobWorkers: cfg.JobWorkers,
		jobTimeout: cfg.JobTimeout,
		started:    time.Now(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
		queue:      make(chan *job, cfg.MaxQueue),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	s.mux.HandleFunc("GET /v1/statusz", s.handleStatusz)
	for i := 0; i < executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Engine returns the shared engine (the daemon uses it to set the cache
// budget).
func (s *Server) Engine() *scenario.Engine { return s.eng }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown stops accepting jobs and drains the queue and every running
// job. If ctx expires first, in-flight engine work is canceled through
// its context and Shutdown returns the expiry; either way no executor
// is left running when it returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return fmt.Errorf("service: drain aborted: %w", errs.Ctx(ctx))
	}
}

func (s *Server) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	var ctx context.Context
	var cancel context.CancelFunc
	if s.jobTimeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, s.jobTimeout)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()
	j.mu.Lock()
	if j.state != StateQueued { // canceled while waiting
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	j.mu.Unlock()

	results, err := s.eng.RunBatch(ctx, j.specs, scenario.Options{
		Workers:  s.jobWorkers,
		Progress: j.progress,
	})

	j.mu.Lock()
	j.cancel = nil
	j.final = results
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, errs.ErrCanceled):
		j.state = StateCanceled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	j.mu.Unlock()
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: read spec: %v", err))
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusBadRequest,
			errs.BadParamf("service: spec document over %d bytes", maxSpecBytes))
		return
	}
	specs, err := scenario.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	for i := range specs {
		if err := specs[i].Validate(s.eng.Registry()); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	total := 0
	for i := range specs {
		total += specs[i].NumReps()
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, errors.New("service: draining, not accepting jobs"))
		return
	}
	s.nextID++
	j := &job{
		id:    fmt.Sprintf("job-%d", s.nextID),
		specs: specs,
		state: StateQueued,
		total: total,
		reps:  make([][]scenario.RepResult, len(specs)),
		done:  make([][]bool, len(specs)),
	}
	for i := range specs {
		j.reps[i] = make([]scenario.RepResult, specs[i].NumReps())
		j.done[i] = make([]bool, specs[i].NumReps())
	}
	select {
	case s.queue <- j:
	default:
		s.nextID--
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("service: job queue full (%d queued)", cap(s.queue)))
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, j.status(false))
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, len(ids))
	for i, id := range ids {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	out := make([]*JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status(false)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = fmt.Errorf("service: canceled before running: %w", errs.ErrCanceled)
	case StateRunning:
		// The engine observes the context; the executor records the
		// terminal state when RunBatch returns.
		j.cancel()
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, j.status(false))
}

func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.registryInfo())
}

func (s *Server) registryInfo() *RegistryInfo {
	info := &RegistryInfo{}
	for _, name := range s.eng.Registry().Names() {
		g, err := s.eng.Registry().Lookup(name)
		if err != nil {
			continue
		}
		info.Models = append(info.Models, ComponentInfo{Name: name, Params: g.Params()})
	}
	for _, name := range metricreg.Names() {
		m, err := metricreg.Lookup(name)
		if err != nil {
			continue
		}
		info.Metrics = append(info.Metrics, ComponentInfo{Name: name, Params: m.Params()})
	}
	for _, name := range attackreg.Names() {
		a, err := attackreg.Lookup(name)
		if err != nil {
			continue
		}
		info.Attacks = append(info.Attacks, ComponentInfo{Name: name, Params: a.Params()})
	}
	for _, name := range trafficreg.Names() {
		m, err := trafficreg.Lookup(name)
		if err != nil {
			continue
		}
		info.Traffic = append(info.Traffic, ComponentInfo{Name: name, Params: m.Params()})
	}
	for _, list := range [][]ComponentInfo{info.Models, info.Metrics, info.Attacks, info.Traffic} {
		sort.Slice(list, func(i, k int) bool { return list[i].Name < list[k].Name })
	}
	return info
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	st := &Statusz{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Cache:         s.eng.CacheStats(),
	}
	s.mu.Lock()
	st.Draining = s.draining
	st.Jobs.Submitted = len(s.jobs)
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			st.Jobs.Queued++
		case StateRunning:
			st.Jobs.Running++
		case StateDone:
			st.Jobs.Done++
		case StateFailed:
			st.Jobs.Failed++
		case StateCanceled:
			st.Jobs.Canceled++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
