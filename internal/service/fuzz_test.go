package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fuzzServer is a shared no-executor server: submissions validate and
// queue but never run, so fuzzing exercises only the parse/validate/
// route surface.
func fuzzServer(f *testing.F) *Server {
	f.Helper()
	s := New(Config{Executors: -1, MaxQueue: 4})
	f.Cleanup(func() { s.baseCancel() })
	return s
}

// FuzzSubmitSpec hammers job submission with arbitrary bodies: the
// handler must never panic, and every outcome is 202 (accepted), 400
// (rejected with a JSON error body), or 429 (queue full).
func FuzzSubmitSpec(f *testing.F) {
	s := fuzzServer(f)
	f.Add(`{"generate": {"model": "ba"}}`)
	f.Add(`[{"generate": {"model": "waxman", "params": {"n": 60}}}]`)
	f.Add(`{"scenarios": [{"generate": {"model": "fkp"}}]}`)
	f.Add(`{"generate": {"model": "nope"}}`)
	f.Add(`{"generate": {"model": "ba", "params": {"n": -5}}}`)
	f.Add(`{"generate": {"model": "ba"}, "measure": {"metrics": [{"name": "zzz"}]}}`)
	f.Add(`{"generate"`)
	f.Add("")
	f.Add("null")
	f.Add(`[]`)
	f.Add(`{"generate": {"model": "ba"}, "attack": {"fracs": [2]}}`)
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		switch w.Code {
		case http.StatusAccepted, http.StatusTooManyRequests:
		case http.StatusBadRequest:
			var eb errorBody
			if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error == "" {
				t.Fatalf("400 without a JSON error body: %q", w.Body.String())
			}
		default:
			t.Fatalf("spec %q gave HTTP %d, want 202/400/429", body, w.Code)
		}
	})
}

// FuzzJobRouting drives arbitrary methods and paths through the mux:
// no panic, and every status is a sane HTTP code (the mux's own
// redirects and 404/405s included).
func FuzzJobRouting(f *testing.F) {
	s := fuzzServer(f)
	f.Add("GET", "/v1/jobs/job-1")
	f.Add("GET", "/v1/jobs/../../etc/passwd")
	f.Add("DELETE", "/v1/jobs/")
	f.Add("PATCH", "/v1/jobs/job-1")
	f.Add("GET", "/v1/statusz")
	f.Add("POST", "/v1/registry")
	f.Add("GET", "//v1//jobs")
	f.Add("OPTIONS", "*")
	f.Add("GET", "/v1/jobs/job-1/extra")
	f.Fuzz(func(t *testing.T, method, path string) {
		// httptest.NewRequest itself panics on a non-token method, so
		// only letter-token methods reach the server; the path is where
		// the routing surface lives.
		for _, r := range method {
			if (r < 'A' || r > 'Z') && (r < 'a' || r > 'z') {
				t.Skip("not an HTTP method token")
			}
		}
		if method == "" || path == "" || path[0] != '/' || strings.ContainsAny(path, " \r\n") {
			t.Skip("not a routable request line")
		}
		req := httptest.NewRequest(method, "http://fuzz.invalid", nil)
		req.URL.Path = path
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code < 200 || w.Code > 599 {
			t.Fatalf("%s %q gave HTTP %d", method, path, w.Code)
		}
	})
}
