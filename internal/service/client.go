package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/errs"
	"repro/internal/scenario"
)

// Client talks to a toposcenariod server. The zero value is not usable;
// call NewClient.
type Client struct {
	base string
	hc   *http.Client
	// PollInterval spaces Wait's status polls (default 100ms).
	PollInterval time.Duration
}

// NewClient returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080"). A nil hc uses http.DefaultClient.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// SubmitSpec submits a raw spec document — exactly the bytes the CLI
// would run locally — and returns the accepted job's status.
func (c *Client) SubmitSpec(ctx context.Context, spec []byte) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Submit marshals scenarios and submits them as one job.
func (c *Client) Submit(ctx context.Context, scs []scenario.Scenario) (*JobStatus, error) {
	body, err := json.Marshal(scs)
	if err != nil {
		return nil, err
	}
	return c.SubmitSpec(ctx, body)
}

// Job fetches one job's status, results included.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every job's status (without results), in submission order.
func (c *Client) Jobs(ctx context.Context) ([]*JobStatus, error) {
	var out []*JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel asks the server to cancel a job and returns its status. A
// queued job cancels immediately; a running one cancels through the
// engine's context, so poll (or Wait) for the terminal state.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls until the job reaches a terminal state and returns that
// final status. On context expiry it returns the last status seen (nil
// if none was fetched yet) alongside the ErrCanceled-wrapping error.
func (c *Client) Wait(ctx context.Context, id string) (*JobStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	var last *JobStatus
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			if cerr := errs.Ctx(ctx); cerr != nil {
				return last, fmt.Errorf("service: waiting for %s: %w", id, cerr)
			}
			return last, err
		}
		last = st
		if Terminal(st.State) {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return last, fmt.Errorf("service: waiting for %s: %w", id, errs.Ctx(ctx))
		}
	}
}

// Statusz fetches the monitoring snapshot.
func (c *Client) Statusz(ctx context.Context) (*Statusz, error) {
	var st Statusz
	if err := c.do(ctx, http.MethodGet, "/v1/statusz", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Registry fetches the component listing.
func (c *Client) Registry(ctx context.Context) (*RegistryInfo, error) {
	var info RegistryInfo
	if err := c.do(ctx, http.MethodGet, "/v1/registry", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// do issues one request and decodes the JSON response into out. Non-2xx
// responses surface the server's error body; a 400 wraps
// errs.ErrBadParam so remote validation failures classify exactly like
// local ones.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		msg := strings.TrimSpace(string(data))
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		if resp.StatusCode == http.StatusBadRequest {
			return fmt.Errorf("service: %s: %w", msg, errs.ErrBadParam)
		}
		return fmt.Errorf("service: %s %s: HTTP %d: %s", method, path, resp.StatusCode, msg)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}
