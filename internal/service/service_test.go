package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/errs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/scenario"
)

// newTestServer starts a Server over cfg behind an httptest listener
// and returns it with a client; both are torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		hs.Close()
	})
	c := NewClient(hs.URL, hs.Client())
	c.PollInterval = 5 * time.Millisecond
	return s, c
}

func testSpecs() []scenario.Scenario {
	return []scenario.Scenario{
		{
			Name:     "degrees",
			Generate: scenario.GenerateSpec{Model: "ba", Params: scenario.Params{"n": 80}},
			Measure:  &scenario.MeasureSpec{Degrees: true},
			Seeds:    []int64{1, 2},
		},
		{
			Name:     "routed",
			Generate: scenario.GenerateSpec{Model: "waxman", Params: scenario.Params{"n": 60}},
			Route:    &scenario.RouteSpec{Demands: 20},
			Reps:     2,
		},
	}
}

// TestSubmitPollResultsMatchLocalEngine is the acceptance criterion:
// results fetched through the service are byte-identical (as JSON) to a
// direct local RunBatch of the same specs.
func TestSubmitPollResultsMatchLocalEngine(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	specs := testSpecs()

	st, err := c.Submit(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued || st.ID == "" {
		t.Fatalf("submit returned %+v", st)
	}
	if st.Scenarios != 2 || st.Reps != 4 {
		t.Fatalf("submit counted %d scenarios / %d reps, want 2 / 4", st.Scenarios, st.Reps)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Completed != 4 || final.Error != "" {
		t.Fatalf("final status %+v", final)
	}

	local, err := scenario.NewEngine(nil).RunBatch(ctx, specs, scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	remoteJSON, err := json.Marshal(final.Results)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}
	if string(remoteJSON) != string(localJSON) {
		t.Fatalf("service results differ from local engine:\n--- remote ---\n%s\n--- local ---\n%s",
			remoteJSON, localJSON)
	}
}

// TestConcurrentSubmissionsSingleGeneration submits the same topology
// identity from many concurrent clients and asserts the shared engine
// generated it exactly once.
func TestConcurrentSubmissionsSingleGeneration(t *testing.T) {
	var calls atomic.Int64
	reg := scenario.NewRegistry()
	if err := reg.Register(&scenario.FuncGenerator{
		GenName: "counted",
		GenParams: []scenario.ParamSpec{
			{Name: "n", Kind: scenario.Int, Default: 64},
			{Name: "seed", Kind: scenario.Int, Default: 1},
		},
		Fn: func(ctx context.Context, p scenario.Params) (*graph.Graph, error) {
			calls.Add(1)
			return gen.BarabasiAlbert(p.Int("n"), 2, p.Seed())
		},
	}); err != nil {
		t.Fatal(err)
	}
	eng := scenario.NewEngine(reg)
	_, c := newTestServer(t, Config{Engine: eng, Executors: 8})

	ctx := context.Background()
	spec := scenario.Scenario{
		Generate: scenario.GenerateSpec{Model: "counted"},
		Measure:  &scenario.MeasureSpec{Degrees: true},
		Reps:     3,
	}
	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	errsCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.Submit(ctx, []scenario.Scenario{spec})
			if err != nil {
				errsCh <- err
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	close(errsCh)
	for err := range errsCh {
		t.Fatal(err)
	}
	var ref string
	for i, id := range ids {
		final, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone {
			t.Fatalf("job %s state %s: %s", id, final.State, final.Error)
		}
		got, err := json.Marshal(final.Results)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = string(got)
		} else if string(got) != ref {
			t.Fatalf("job %s results differ from job %s", id, ids[0])
		}
	}
	// Reps 0..2 share derivation from one base seed identity per rep:
	// 3 distinct identities, each generated exactly once across all 8
	// concurrent jobs.
	if got := calls.Load(); got != 3 {
		t.Fatalf("generator ran %d times across %d concurrent jobs, want 3", got, n)
	}
	st, err := c.Statusz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Misses != 3 || st.Cache.Hits+st.Cache.Coalesced == 0 || st.Cache.InFlight != 0 {
		t.Fatalf("cache stats %+v", st.Cache)
	}
}

// blockingRegistry registers "fast" (a quick BA topology) and "block"
// (parks until its context is canceled) for cancellation tests.
func blockingRegistry(t *testing.T, started chan<- struct{}) *scenario.Registry {
	t.Helper()
	reg := scenario.NewRegistry()
	seed := scenario.ParamSpec{Name: "seed", Kind: scenario.Int, Default: 1}
	if err := reg.Register(&scenario.FuncGenerator{
		GenName:   "fast",
		GenParams: []scenario.ParamSpec{seed},
		Fn: func(ctx context.Context, p scenario.Params) (*graph.Graph, error) {
			return gen.BarabasiAlbert(40, 2, p.Seed())
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(&scenario.FuncGenerator{
		GenName:   "block",
		GenParams: []scenario.ParamSpec{seed},
		Fn: func(ctx context.Context, p scenario.Params) (*graph.Graph, error) {
			if started != nil {
				started <- struct{}{}
			}
			<-ctx.Done()
			return nil, errs.Ctx(ctx)
		},
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestCancelRunningJobStreamsPartialResults cancels a job whose last
// unit never finishes and checks the terminal state carries the
// engine's trimmed partial results — plus that the streaming view while
// running already exposed the completed prefix.
func TestCancelRunningJobStreamsPartialResults(t *testing.T) {
	started := make(chan struct{}, 1)
	eng := scenario.NewEngine(blockingRegistry(t, started))
	_, c := newTestServer(t, Config{Engine: eng, JobWorkers: 4})
	ctx := context.Background()

	st, err := c.Submit(ctx, []scenario.Scenario{
		{Name: "quick", Generate: scenario.GenerateSpec{Model: "fast"}, Measure: &scenario.MeasureSpec{Degrees: true}, Seeds: []int64{1, 2}},
		{Name: "stuck", Generate: scenario.GenerateSpec{Model: "block"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// Poll until both fast units are visible through the streaming
	// prefix view.
	deadline := time.Now().Add(10 * time.Second)
	var running *JobStatus
	for {
		running, err = c.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if running.Completed == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fast units never completed: %+v", running)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if running.State != StateRunning {
		t.Fatalf("state %s, want running", running.State)
	}
	if len(running.Results) != 2 || len(running.Results[0].Reps) != 2 || len(running.Results[1].Reps) != 0 {
		t.Fatalf("streamed view %+v", running.Results)
	}
	if running.Results[0].Reps[0].Seed != 1 || running.Results[0].Reps[1].Seed != 2 {
		t.Fatalf("streamed reps out of order: %+v", running.Results[0].Reps)
	}

	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("state %s, want canceled (err %q)", final.State, final.Error)
	}
	if final.Error == "" || !strings.Contains(final.Error, "canceled") {
		t.Fatalf("terminal error %q", final.Error)
	}
	if len(final.Results) != 2 {
		t.Fatalf("partial results %+v", final.Results)
	}
	if !final.Results[0].Partial || len(final.Results[0].Reps) != 2 {
		t.Fatalf("scenario 0 partial view %+v", final.Results[0])
	}
	if !final.Results[1].Partial || len(final.Results[1].Reps) != 0 {
		t.Fatalf("scenario 1 partial view %+v", final.Results[1])
	}
}

// TestCancelQueuedJobAndQueueLimit exercises a server with no
// executors: jobs stay queued, the queue bound maps to 429, and a
// queued job cancels immediately.
func TestCancelQueuedJobAndQueueLimit(t *testing.T) {
	_, c := newTestServer(t, Config{Executors: -1, MaxQueue: 2})
	ctx := context.Background()
	spec := []scenario.Scenario{{Generate: scenario.GenerateSpec{Model: "ba", Params: scenario.Params{"n": 50}}}}

	a, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, spec); err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, spec)
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("third submit on a 2-deep queue gave %v, want HTTP 429", err)
	}

	st, err := c.Cancel(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("queued job after cancel: %s", st.State)
	}
	if got, err := c.Job(ctx, a.ID); err != nil || got.State != StateCanceled {
		t.Fatalf("poll after cancel: %+v, %v", got, err)
	}
	// Canceling a terminal job is a no-op.
	if st, err := c.Cancel(ctx, a.ID); err != nil || st.State != StateCanceled {
		t.Fatalf("second cancel: %+v, %v", st, err)
	}
}

// TestSubmitValidation maps malformed and invalid specs to 400s that
// classify as ErrBadParam through the client.
func TestSubmitValidation(t *testing.T) {
	_, c := newTestServer(t, Config{Executors: -1})
	ctx := context.Background()
	for _, body := range []string{
		"",
		"{ not json",
		`{"generate": {"model": "nope"}}`,
		`{"generate": {"model": "ba", "params": {"n": 2.5}}}`,
		`{"generate": {"model": "ba", "params": {"nope": 1}}}`,
		`{"generate": {"model": "ba"}, "reps": -1}`,
		`[{"generate": {"model": "ba"}, "route": {"demands": 0}}]`,
	} {
		if _, err := c.SubmitSpec(ctx, []byte(body)); !errors.Is(err, errs.ErrBadParam) {
			t.Errorf("spec %q gave %v, want ErrBadParam", body, err)
		}
	}
	if _, err := c.Job(ctx, "job-999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown job gave %v, want HTTP 404", err)
	}
}

// TestRegistryEndpoint checks every component family is listed with
// parameter specs.
func TestRegistryEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{Executors: -1})
	info, err := c.Registry(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	find := func(list []ComponentInfo, name string) *ComponentInfo {
		for i := range list {
			if list[i].Name == name {
				return &list[i]
			}
		}
		return nil
	}
	for _, probe := range []struct {
		family string
		list   []ComponentInfo
		name   string
	}{
		{"models", info.Models, "fkp"},
		{"models", info.Models, "waxman"},
		{"metrics", info.Metrics, "expansion"},
		{"attacks", info.Attacks, "degree"},
		{"traffic", info.Traffic, "gravity"},
	} {
		if find(probe.list, probe.name) == nil {
			t.Errorf("registry %s missing %q", probe.family, probe.name)
		}
	}
	wax := find(info.Models, "waxman")
	if wax == nil || len(wax.Params) == 0 {
		t.Fatalf("waxman params missing: %+v", wax)
	}
	hasN := false
	for _, p := range wax.Params {
		if p.Name == "n" {
			hasN = true
		}
	}
	if !hasN {
		t.Fatalf("waxman param specs missing \"n\": %+v", wax.Params)
	}
}

// TestStatuszCountsJobsAndCache runs one job and checks the counters
// move.
func TestStatuszCountsJobsAndCache(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	st, err := c.Submit(ctx, []scenario.Scenario{
		{Generate: scenario.GenerateSpec{Model: "ba", Params: scenario.Params{"n": 60}}, Measure: &scenario.MeasureSpec{Degrees: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	z, err := c.Statusz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if z.UptimeSeconds < 0 || z.Draining {
		t.Fatalf("statusz %+v", z)
	}
	if z.Jobs.Submitted != 1 || z.Jobs.Done != 1 {
		t.Fatalf("job stats %+v", z.Jobs)
	}
	if z.Cache.Misses == 0 || z.Cache.Budget <= 0 {
		t.Fatalf("cache stats %+v", z.Cache)
	}
	list, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID || list[0].Results != nil {
		t.Fatalf("job list %+v", list)
	}
}

// TestShutdownDrainsQueuedJobs submits work, shuts down, and checks
// everything queued still completed while new submissions are refused.
func TestShutdownDrainsQueuedJobs(t *testing.T) {
	s, c := newTestServer(t, Config{Executors: 1})
	ctx := context.Background()
	spec := []scenario.Scenario{{
		Generate: scenario.GenerateSpec{Model: "ba", Params: scenario.Params{"n": 60}},
		Measure:  &scenario.MeasureSpec{Degrees: true},
		Reps:     2,
	}}
	ids := make([]string, 3)
	for i := range ids {
		st, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	for _, id := range ids {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s after drain: %s (%s)", id, st.State, st.Error)
		}
	}
	_, err := c.Submit(ctx, spec)
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("submit while draining gave %v, want HTTP 503", err)
	}
	z, err := c.Statusz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !z.Draining {
		t.Fatal("statusz not draining after Shutdown")
	}
}

// TestShutdownDeadlineCancelsRunningJob forces the drain deadline and
// checks the in-flight job is canceled through its context.
func TestShutdownDeadlineCancelsRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	eng := scenario.NewEngine(blockingRegistry(t, started))
	s, c := newTestServer(t, Config{Engine: eng})
	ctx := context.Background()

	st, err := c.Submit(ctx, []scenario.Scenario{{Generate: scenario.GenerateSpec{Model: "block"}}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	dctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(dctx); err == nil {
		t.Fatal("Shutdown returned nil despite a blocked job")
	}
	final, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("blocked job after forced shutdown: %s (%s)", final.State, final.Error)
	}
}

// TestJobStatusJSONShape pins the wire field names the CLI and smoke
// script rely on.
func TestJobStatusJSONShape(t *testing.T) {
	data, err := json.Marshal(&JobStatus{ID: "job-1", State: StateQueued})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id"`, `"state"`, `"scenarios"`, `"reps"`, `"completed"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JobStatus JSON missing %s: %s", want, data)
		}
	}
	if strings.Contains(string(data), `"results"`) {
		t.Errorf("empty results not omitted: %s", data)
	}
	if !Terminal(StateDone) || !Terminal(StateFailed) || !Terminal(StateCanceled) ||
		Terminal(StateQueued) || Terminal(StateRunning) {
		t.Fatal("Terminal misclassifies a state")
	}
}
