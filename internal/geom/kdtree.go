package geom

import (
	"container/heap"
	"math"
	"sort"
)

// KDTree is a static 2-d tree over a fixed point set, built once and then
// queried for nearest and k-nearest neighbours. The incremental generators
// (FKP, buy-at-bulk) query it heavily, so Nearest avoids allocation.
type KDTree struct {
	pts  []Point // points in tree order
	idx  []int   // original index of pts[i]
	axis []int8  // splitting axis per node (0 = x, 1 = y)
}

// NewKDTree builds a kd-tree over pts. The tree keeps its own copy of the
// coordinates; the caller's slice is not retained.
func NewKDTree(pts []Point) *KDTree {
	n := len(pts)
	t := &KDTree{
		pts:  make([]Point, n),
		idx:  make([]int, n),
		axis: make([]int8, n),
	}
	copy(t.pts, pts)
	for i := range t.idx {
		t.idx[i] = i
	}
	t.build(0, n, 0)
	return t
}

// Len returns the number of points in the tree.
func (t *KDTree) Len() int { return len(t.pts) }

// build arranges pts[lo:hi] into an implicit kd-tree: the median element
// (by the splitting axis) is placed at position mid, with the left subtree
// in [lo,mid) and right subtree in (mid,hi].
func (t *KDTree) build(lo, hi, depth int) {
	if hi-lo <= 0 {
		return
	}
	ax := int8(depth % 2)
	mid := (lo + hi) / 2
	t.nthElement(lo, hi, mid, ax)
	t.axis[mid] = ax
	t.build(lo, mid, depth+1)
	t.build(mid+1, hi, depth+1)
}

// nthElement partially sorts [lo,hi) so the element at position n is the
// one that full sorting by axis would place there. Lomuto quickselect
// with a median-of-three pivot: each round recurses on a strictly
// smaller range, so termination is structural.
func (t *KDTree) nthElement(lo, hi, n int, ax int8) {
	for hi-lo > 1 {
		// Median-of-three pivot for robustness on sorted inputs.
		mid := (lo + hi) / 2
		if t.less(mid, lo, ax) {
			t.swap(mid, lo)
		}
		if t.less(hi-1, lo, ax) {
			t.swap(hi-1, lo)
		}
		if t.less(hi-1, mid, ax) {
			t.swap(hi-1, mid)
		}
		// Move the pivot to hi-1 and partition the rest against it.
		t.swap(mid, hi-1)
		pivot := t.coord(hi-1, ax)
		store := lo
		for i := lo; i < hi-1; i++ {
			if t.coord(i, ax) < pivot {
				t.swap(i, store)
				store++
			}
		}
		t.swap(store, hi-1)
		switch {
		case n == store:
			return
		case n < store:
			hi = store
		default:
			lo = store + 1
		}
	}
}

func (t *KDTree) coord(i int, ax int8) float64 {
	if ax == 0 {
		return t.pts[i].X
	}
	return t.pts[i].Y
}

func (t *KDTree) less(i, j int, ax int8) bool { return t.coord(i, ax) < t.coord(j, ax) }

func (t *KDTree) swap(i, j int) {
	t.pts[i], t.pts[j] = t.pts[j], t.pts[i]
	t.idx[i], t.idx[j] = t.idx[j], t.idx[i]
}

// Nearest returns the original index of the point closest to q and its
// distance. It panics on an empty tree.
func (t *KDTree) Nearest(q Point) (int, float64) {
	if len(t.pts) == 0 {
		panic("geom: Nearest on empty KDTree")
	}
	best := -1
	bestD2 := 0.0
	t.nearest(0, len(t.pts), q, &best, &bestD2)
	return t.idx[best], sqrt(bestD2)
}

func (t *KDTree) nearest(lo, hi int, q Point, best *int, bestD2 *float64) {
	if hi-lo <= 0 {
		return
	}
	mid := (lo + hi) / 2
	d2 := t.pts[mid].Dist2(q)
	if *best == -1 || d2 < *bestD2 {
		*best = mid
		*bestD2 = d2
	}
	ax := t.axis[mid]
	var delta float64
	if ax == 0 {
		delta = q.X - t.pts[mid].X
	} else {
		delta = q.Y - t.pts[mid].Y
	}
	if delta < 0 {
		t.nearest(lo, mid, q, best, bestD2)
		if delta*delta < *bestD2 {
			t.nearest(mid+1, hi, q, best, bestD2)
		}
	} else {
		t.nearest(mid+1, hi, q, best, bestD2)
		if delta*delta < *bestD2 {
			t.nearest(lo, mid, q, best, bestD2)
		}
	}
}

// Neighbor is a point index with its distance from the query.
type Neighbor struct {
	Index int
	Dist  float64
}

// KNearest returns the k points closest to q, ordered by increasing
// distance. If k exceeds the tree size, all points are returned.
func (t *KDTree) KNearest(q Point, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	if k > len(t.pts) {
		k = len(t.pts)
	}
	h := &neighborHeap{}
	t.knearest(0, len(t.pts), q, k, h)
	out := make([]Neighbor, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		n := heap.Pop(h).(Neighbor)
		out[i] = Neighbor{Index: t.idx[n.Index], Dist: sqrt(n.Dist)}
	}
	return out
}

func (t *KDTree) knearest(lo, hi int, q Point, k int, h *neighborHeap) {
	if hi-lo <= 0 {
		return
	}
	mid := (lo + hi) / 2
	d2 := t.pts[mid].Dist2(q)
	if h.Len() < k {
		heap.Push(h, Neighbor{Index: mid, Dist: d2})
	} else if d2 < (*h)[0].Dist {
		(*h)[0] = Neighbor{Index: mid, Dist: d2}
		heap.Fix(h, 0)
	}
	ax := t.axis[mid]
	var delta float64
	if ax == 0 {
		delta = q.X - t.pts[mid].X
	} else {
		delta = q.Y - t.pts[mid].Y
	}
	first, second := lo, mid // ranges [lo,mid) and (mid,hi]
	if delta >= 0 {
		t.knearest(mid+1, hi, q, k, h)
		if h.Len() < k || delta*delta < (*h)[0].Dist {
			t.knearest(first, second, q, k, h)
		}
		return
	}
	t.knearest(lo, mid, q, k, h)
	if h.Len() < k || delta*delta < (*h)[0].Dist {
		t.knearest(mid+1, hi, q, k, h)
	}
}

// RangeSearch returns the original indices of all points within radius of
// q, in ascending index order.
func (t *KDTree) RangeSearch(q Point, radius float64) []int {
	if radius < 0 {
		return nil
	}
	var out []int
	r2 := radius * radius
	t.rangeSearch(0, len(t.pts), q, r2, &out)
	sort.Ints(out)
	return out
}

func (t *KDTree) rangeSearch(lo, hi int, q Point, r2 float64, out *[]int) {
	if hi-lo <= 0 {
		return
	}
	mid := (lo + hi) / 2
	if t.pts[mid].Dist2(q) <= r2 {
		*out = append(*out, t.idx[mid])
	}
	ax := t.axis[mid]
	var delta float64
	if ax == 0 {
		delta = q.X - t.pts[mid].X
	} else {
		delta = q.Y - t.pts[mid].Y
	}
	if delta < 0 {
		t.rangeSearch(lo, mid, q, r2, out)
		if delta*delta <= r2 {
			t.rangeSearch(mid+1, hi, q, r2, out)
		}
	} else {
		t.rangeSearch(mid+1, hi, q, r2, out)
		if delta*delta <= r2 {
			t.rangeSearch(lo, mid, q, r2, out)
		}
	}
}

// neighborHeap is a max-heap on squared distance, used to keep the k best
// candidates during KNearest.
type neighborHeap []Neighbor

func (h neighborHeap) Len() int            { return len(h) }
func (h neighborHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h neighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *neighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
