package geom

import "math"

// Grid is an incremental uniform grid over a fixed rectangle: points are
// appended one at a time (the growth models insert every arrival) and
// bucketed into equal-size cells, so spatial queries can enumerate
// candidates cell by cell in expanding rings with a proven distance
// lower bound per ring instead of scanning every stored point.
//
// The contract that makes the lower bounds sound: every added point must
// lie inside the grid rectangle (callers build the rect as a bounding box
// of all points they will ever insert). A point is stored in the cell
// that geometrically contains it, so the distance from a query point to a
// cell's rectangle never exceeds the distance to any point stored in that
// cell.
type Grid struct {
	rect   Rect
	nx, ny int
	cw, ch float64 // cell width/height; 0 when the rect is degenerate
	cells  [][]int32
	n      int
}

// NewGrid builds an empty grid over rect sized for about `expected`
// points, targeting a small constant number of points per cell. A
// degenerate rectangle (zero width or height) collapses to a single cell,
// which keeps every query correct (all bounds become 0) at the cost of
// pruning.
func NewGrid(rect Rect, expected int) *Grid {
	side := 1
	if expected > 3 {
		side = int(math.Ceil(math.Sqrt(float64(expected) / 3)))
	}
	g := &Grid{rect: rect, nx: side, ny: side}
	if rect.Width() <= 0 || rect.Height() <= 0 {
		g.nx, g.ny = 1, 1
	}
	g.cw = rect.Width() / float64(g.nx)
	g.ch = rect.Height() / float64(g.ny)
	g.cells = make([][]int32, g.nx*g.ny)
	return g
}

// Len returns the number of stored points.
func (g *Grid) Len() int { return g.n }

// Dims returns the cell-grid dimensions (columns, rows).
func (g *Grid) Dims() (nx, ny int) { return g.nx, g.ny }

// MinCellSide returns the smaller cell dimension — the per-ring distance
// unit of ring lower bounds.
func (g *Grid) MinCellSide() float64 {
	if g.cw < g.ch {
		return g.cw
	}
	return g.ch
}

// CellAt returns the (column, row) of the cell containing p, clamped to
// the grid. Points inside the rect (the Add contract) always land in the
// cell that geometrically contains them.
func (g *Grid) CellAt(p Point) (cx, cy int) {
	if g.cw > 0 {
		cx = int((p.X - g.rect.MinX) / g.cw)
	}
	if g.ch > 0 {
		cy = int((p.Y - g.rect.MinY) / g.ch)
	}
	return clampInt(cx, 0, g.nx-1), clampInt(cy, 0, g.ny-1)
}

// CellIndex flattens (cx, cy) into an index into the cell array.
func (g *Grid) CellIndex(cx, cy int) int { return cy*g.nx + cx }

// Add stores id at point p. p must lie inside the grid rectangle (see the
// type comment); ids are opaque to the grid.
func (g *Grid) Add(id int32, p Point) {
	cx, cy := g.CellAt(p)
	ci := g.CellIndex(cx, cy)
	g.cells[ci] = append(g.cells[ci], id)
	g.n++
}

// CellIDs returns the ids stored in cell index ci, in insertion order.
// Callers must not mutate the returned slice.
func (g *Grid) CellIDs(ci int) []int32 { return g.cells[ci] }

// CellDistLB returns the exact distance from p to cell (cx, cy)'s
// rectangle — a proven lower bound on the distance from p to any point
// stored in that cell (0 when p lies inside it).
func (g *Grid) CellDistLB(p Point, cx, cy int) float64 {
	return g.RangeDistLB(p, cx, cy, cx, cy)
}

// RangeDistLB returns the distance from p to the rectangle covered by the
// inclusive cell range [cx0, cx1] x [cy0, cy1] — a proven lower bound on
// the distance from p to any point stored in any cell of the range. The
// growth index uses it for coarse blocks of cells.
func (g *Grid) RangeDistLB(p Point, cx0, cy0, cx1, cy1 int) float64 {
	minX := g.rect.MinX + float64(cx0)*g.cw
	maxX := g.rect.MinX + float64(cx1+1)*g.cw
	minY := g.rect.MinY + float64(cy0)*g.ch
	maxY := g.rect.MinY + float64(cy1+1)*g.ch
	dx := math.Max(0, math.Max(minX-p.X, p.X-maxX))
	dy := math.Max(0, math.Max(minY-p.Y, p.Y-maxY))
	return math.Sqrt(dx*dx + dy*dy)
}

// ComplementDistLB returns the distance from p to the complement of the
// axis-aligned rectangle covering the inclusive cell range
// [cx0, cx1] x [cy0, cy1] — the margin between p and the nearest edge of
// that rect, or 0 when p lies on or outside it. The range may extend
// beyond the grid (ring enumeration passes unclipped bands); every point
// stored in a cell outside the range lies outside the rect, so the
// margin lower-bounds p's distance to all of them.
func (g *Grid) ComplementDistLB(p Point, cx0, cy0, cx1, cy1 int) float64 {
	minX := g.rect.MinX + float64(cx0)*g.cw
	maxX := g.rect.MinX + float64(cx1+1)*g.cw
	minY := g.rect.MinY + float64(cy0)*g.ch
	maxY := g.rect.MinY + float64(cy1+1)*g.ch
	m := math.Min(math.Min(p.X-minX, maxX-p.X), math.Min(p.Y-minY, maxY-p.Y))
	if m < 0 {
		return 0
	}
	return m
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
