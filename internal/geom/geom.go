// Package geom provides the planar geometry used by the geographic
// topology models: points in the unit square (or any rectangle), distance
// kernels, and a kd-tree for nearest-neighbour queries.
package geom

import (
	"math"
	"math/rand"
)

// Point is a location in the plane. Coordinates are abstract "map units";
// the traffic model fixes a physical scale when it needs one.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared Euclidean distance, avoiding the sqrt when
// only comparisons are needed.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Manhattan returns the L1 distance, used by the access-design cost model
// variant that approximates street-grid cable runs.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Rect is an axis-aligned rectangle [MinX,MaxX] x [MinY,MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// UnitSquare is the canonical region used by the paper-style models.
var UnitSquare = Rect{0, 0, 1, 1}

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Diagonal returns the length of the rectangle diagonal — the maximum
// distance between any two points in r.
func (r Rect) Diagonal() float64 {
	return math.Hypot(r.Width(), r.Height())
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// RandomPoint samples a point uniformly at random inside r.
func (r Rect) RandomPoint(rnd *rand.Rand) Point {
	return Point{
		X: r.MinX + rnd.Float64()*r.Width(),
		Y: r.MinY + rnd.Float64()*r.Height(),
	}
}

// RandomPoints samples n points uniformly at random inside r.
func (r Rect) RandomPoints(rnd *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = r.RandomPoint(rnd)
	}
	return pts
}

// GaussianCluster samples n points from an isotropic Gaussian centred at c
// with standard deviation sigma, clamped to r. It models a metro area's
// customer scatter around a city centre.
func (r Rect) GaussianCluster(rnd *rand.Rand, c Point, sigma float64, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		p := Point{
			X: c.X + rnd.NormFloat64()*sigma,
			Y: c.Y + rnd.NormFloat64()*sigma,
		}
		p.X = clamp(p.X, r.MinX, r.MaxX)
		p.Y = clamp(p.Y, r.MinY, r.MaxY)
		pts[i] = p
	}
	return pts
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Centroid returns the mean of the given points. It panics on an empty
// slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of empty point set")
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	return Point{sx / n, sy / n}
}

// BoundingRect returns the tightest rectangle containing all points.
// It panics on an empty slice.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect of empty point set")
	}
	r := Rect{pts[0].X, pts[0].Y, pts[0].X, pts[0].Y}
	for _, p := range pts[1:] {
		r.MinX = math.Min(r.MinX, p.X)
		r.MinY = math.Min(r.MinY, p.Y)
		r.MaxX = math.Max(r.MaxX, p.X)
		r.MaxY = math.Max(r.MaxY, p.Y)
	}
	return r
}
