package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestDist(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if got := p.Dist(q); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
	if got := p.Dist2(q); got != 25 {
		t.Fatalf("Dist2 = %v, want 25", got)
	}
	if got := p.Manhattan(q); got != 7 {
		t.Fatalf("Manhattan = %v, want 7", got)
	}
}

func TestDistSymmetry(t *testing.T) {
	err := quick.Check(func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		a := UnitSquare.RandomPoint(r)
		b := UnitSquare.RandomPoint(r)
		c := UnitSquare.RandomPoint(r)
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-12 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 2, 1}
	if !r.Contains(Point{1, 0.5}) {
		t.Fatal("interior point not contained")
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{2, 1}) {
		t.Fatal("boundary points must be contained")
	}
	if r.Contains(Point{2.1, 0.5}) {
		t.Fatal("exterior point contained")
	}
}

func TestRectGeometry(t *testing.T) {
	r := Rect{1, 2, 4, 6}
	if r.Width() != 3 || r.Height() != 4 {
		t.Fatalf("Width/Height = %v/%v", r.Width(), r.Height())
	}
	if r.Diagonal() != 5 {
		t.Fatalf("Diagonal = %v, want 5", r.Diagonal())
	}
	if c := r.Center(); c.X != 2.5 || c.Y != 4 {
		t.Fatalf("Center = %v", c)
	}
}

func TestRandomPointsInside(t *testing.T) {
	r := rng.New(2)
	pts := UnitSquare.RandomPoints(r, 1000)
	if len(pts) != 1000 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !UnitSquare.Contains(p) {
			t.Fatalf("point %v outside unit square", p)
		}
	}
}

func TestGaussianClusterClamped(t *testing.T) {
	r := rng.New(3)
	pts := UnitSquare.GaussianCluster(r, Point{0.01, 0.01}, 0.5, 500)
	for _, p := range pts {
		if !UnitSquare.Contains(p) {
			t.Fatalf("cluster point %v escaped region", p)
		}
	}
}

func TestCentroid(t *testing.T) {
	c := Centroid([]Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}})
	if c.X != 1 || c.Y != 1 {
		t.Fatalf("Centroid = %v, want (1,1)", c)
	}
}

func TestBoundingRect(t *testing.T) {
	r := BoundingRect([]Point{{1, 5}, {-2, 3}, {4, -1}})
	want := Rect{-2, -1, 4, 5}
	if r != want {
		t.Fatalf("BoundingRect = %v, want %v", r, want)
	}
}

func TestKDTreeNearestMatchesBruteForce(t *testing.T) {
	r := rng.New(4)
	pts := UnitSquare.RandomPoints(r, 500)
	tree := NewKDTree(pts)
	for trial := 0; trial < 200; trial++ {
		q := UnitSquare.RandomPoint(r)
		gotIdx, gotD := tree.Nearest(q)
		bestIdx, bestD := -1, math.Inf(1)
		for i, p := range pts {
			if d := p.Dist(q); d < bestD {
				bestIdx, bestD = i, d
			}
		}
		if math.Abs(gotD-bestD) > 1e-12 {
			t.Fatalf("Nearest dist %v (idx %d), brute force %v (idx %d)", gotD, gotIdx, bestD, bestIdx)
		}
	}
}

func TestKDTreeKNearestMatchesBruteForce(t *testing.T) {
	r := rng.New(5)
	pts := UnitSquare.RandomPoints(r, 300)
	tree := NewKDTree(pts)
	for trial := 0; trial < 50; trial++ {
		q := UnitSquare.RandomPoint(r)
		k := 1 + trial%10
		got := tree.KNearest(q, k)
		if len(got) != k {
			t.Fatalf("KNearest returned %d, want %d", len(got), k)
		}
		// Verify sorted ascending.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatal("KNearest results not sorted by distance")
			}
		}
		// Brute-force the k-th distance.
		ds := make([]float64, len(pts))
		for i, p := range pts {
			ds[i] = p.Dist(q)
		}
		for i := 0; i < k; i++ {
			min := i
			for j := i + 1; j < len(ds); j++ {
				if ds[j] < ds[min] {
					min = j
				}
			}
			ds[i], ds[min] = ds[min], ds[i]
			if math.Abs(got[i].Dist-ds[i]) > 1e-12 {
				t.Fatalf("k=%d neighbor %d: dist %v, brute force %v", k, i, got[i].Dist, ds[i])
			}
		}
	}
}

func TestKDTreeKNearestOverK(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}}
	tree := NewKDTree(pts)
	got := tree.KNearest(Point{0, 0}, 10)
	if len(got) != 2 {
		t.Fatalf("KNearest with k>n returned %d, want 2", len(got))
	}
	if got := tree.KNearest(Point{0, 0}, 0); got != nil {
		t.Fatal("KNearest with k=0 should return nil")
	}
}

func TestKDTreeRangeSearchMatchesBruteForce(t *testing.T) {
	r := rng.New(6)
	pts := UnitSquare.RandomPoints(r, 400)
	tree := NewKDTree(pts)
	for trial := 0; trial < 50; trial++ {
		q := UnitSquare.RandomPoint(r)
		radius := r.Float64() * 0.3
		got := tree.RangeSearch(q, radius)
		want := map[int]bool{}
		for i, p := range pts {
			if p.Dist(q) <= radius {
				want[i] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("RangeSearch size %d, want %d", len(got), len(want))
		}
		for _, idx := range got {
			if !want[idx] {
				t.Fatalf("RangeSearch returned %d outside radius", idx)
			}
		}
	}
}

func TestKDTreeNegativeRadius(t *testing.T) {
	tree := NewKDTree([]Point{{0, 0}})
	if got := tree.RangeSearch(Point{0, 0}, -1); got != nil {
		t.Fatal("negative radius should return nil")
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	pts := []Point{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}, {0.1, 0.1}}
	tree := NewKDTree(pts)
	idx, d := tree.Nearest(Point{0.5, 0.5})
	if d != 0 {
		t.Fatalf("Nearest to duplicate point: dist %v, want 0", d)
	}
	if idx < 0 || idx > 2 {
		t.Fatalf("Nearest returned index %d, want one of the duplicates", idx)
	}
	all := tree.RangeSearch(Point{0.5, 0.5}, 0)
	if len(all) != 3 {
		t.Fatalf("RangeSearch(0) over duplicates found %d, want 3", len(all))
	}
}

func TestKDTreeEmptyPanics(t *testing.T) {
	tree := NewKDTree(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Nearest on empty tree should panic")
		}
	}()
	tree.Nearest(Point{0, 0})
}

func TestKDTreeSinglePoint(t *testing.T) {
	tree := NewKDTree([]Point{{0.3, 0.7}})
	idx, d := tree.Nearest(Point{0.3, 0.7})
	if idx != 0 || d != 0 {
		t.Fatalf("Nearest = (%d, %v), want (0, 0)", idx, d)
	}
}
