package robust

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/attackreg"
	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/metricreg"
	"repro/internal/par"
	"repro/internal/rng"
)

// Mode selects the sweep engine's evaluation path.
type Mode int

// Evaluation paths.
const (
	// ModeAuto uses the incremental union-find path when the metric set
	// is exactly {"lcc"} (bit-for-bit identical, near-linear in the
	// whole schedule) and the masked path otherwise.
	ModeAuto Mode = iota
	// ModeMasked re-evaluates every metric's masked accumulator at each
	// removal fraction — one masked traversal per metric per step.
	ModeMasked
	// ModeIncremental replays the whole removal schedule backwards
	// through a reverse union-find, computing the full LCC trajectory in
	// one O((n+m) α) pass. Only the "lcc" metric supports it.
	ModeIncremental
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeMasked:
		return "masked"
	case ModeIncremental:
		return "incremental"
	default:
		return "auto"
	}
}

// ParseMode maps a mode name ("auto", "masked", "incremental") to its
// Mode, wrapping errs.ErrBadParam for unknown names.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "", "auto":
		return ModeAuto, nil
	case "masked":
		return ModeMasked, nil
	case "incremental":
		return ModeIncremental, nil
	default:
		return 0, errs.BadParamf("robust: unknown evaluation mode %q", name)
	}
}

// SweepSpec declares one robustness sweep: a registered attack with
// parameters, the removal fractions to report, and the metric set to
// evaluate along the schedule.
type SweepSpec struct {
	// Attack is an attackreg registry name (aliases accepted; default
	// "random-failure").
	Attack string
	// Params are the attack's parameters, validated against its specs.
	Params attackreg.Params
	// Fracs are the removal fractions in [0, 1]; 1 removes the entire
	// schedule. Fractions are of nodes for node-targeted attacks and of
	// edges for edge-targeted ones.
	Fracs []float64
	// Trials averages randomized schedules (deterministic attacks always
	// use a single pass; <= 0 means 1).
	Trials int
	// Metrics is the masked metric set to trace (default {"lcc"}).
	// Edge-targeted attacks and the incremental path support only
	// {"lcc"}.
	Metrics []string
	// Mode selects the evaluation path (default ModeAuto).
	Mode Mode
	// Workers bounds the trial fan-out (<= 0 means GOMAXPROCS); curves
	// are byte-identical for any value.
	Workers int
}

// RunSweep executes spec against g with a background context; see
// RunSweepContext.
func RunSweep(g *graph.Graph, spec SweepSpec, seed int64) ([]MetricCurve, error) {
	return RunSweepContext(context.Background(), g, nil, spec, seed)
}

// RunSweepContext is the sweep engine: it resolves the attack in the
// registry, computes one removal schedule per trial, and traces the
// metric set along it — through masked accumulators re-reading the
// shared snapshot in place, or through the reverse union-find
// trajectory when only the LCC curve is needed. Trials fan out across
// the worker pool and are reduced in trial order, so every curve is
// byte-identical for any worker count and — pinned by the parity tests
// — for either evaluation path. Pass the CSR from an earlier Freeze of
// g to skip re-freezing (nil freezes internally). Invalid specs wrap
// errs.ErrBadParam; cancellation wraps errs.ErrCanceled.
func RunSweepContext(ctx context.Context, g *graph.Graph, c *graph.CSR, spec SweepSpec, seed int64) ([]MetricCurve, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errs.BadParamf("robust: empty graph")
	}
	if err := ValidateFracs(spec.Fracs); err != nil {
		return nil, err
	}
	atk, err := attackreg.Lookup(spec.Attack)
	if err != nil {
		return nil, err
	}
	resolved, err := attackreg.Resolve(atk, spec.Params)
	if err != nil {
		return nil, err
	}
	metricNames := spec.Metrics
	if len(metricNames) == 0 {
		metricNames = []string{"lcc"}
	}
	onlyLCC := len(metricNames) == 1 && metricNames[0] == "lcc"
	var incremental bool
	switch spec.Mode {
	case ModeAuto:
		incremental = onlyLCC
	case ModeIncremental:
		if !onlyLCC {
			return nil, errs.BadParamf("robust: incremental path traces only the \"lcc\" metric, got %v", metricNames)
		}
		incremental = true
	case ModeMasked:
	default:
		return nil, errs.BadParamf("robust: unknown evaluation mode %d", spec.Mode)
	}
	if atk.Target() == attackreg.Edges && !onlyLCC {
		return nil, errs.BadParamf("robust: edge-removal attack %q supports only the \"lcc\" metric, got %v", atk.Name(), metricNames)
	}
	// Resolve the metric set up front; each trial builds its own
	// accumulators and reuses them across every step of its schedule.
	var mset *metricreg.MaskedSet
	if !incremental && atk.Target() == attackreg.Nodes {
		if mset, err = metricreg.ResolveMasked(metricNames, seed); err != nil {
			return nil, err
		}
	}
	trials := spec.Trials
	if atk.Caps()&attackreg.CapRandomized == 0 {
		trials = 1
	}
	if trials < 1 {
		trials = 1
	}
	total := n
	if atk.Target() == attackreg.Edges {
		total = g.NumEdges()
	}
	// Visit fractions in increasing removal-count order so each trial's
	// mask only ever grows; results land at the caller's original index.
	byK := make([]int, len(spec.Fracs))
	for i := range byK {
		byK[i] = i
	}
	sort.SliceStable(byK, func(a, b int) bool { return spec.Fracs[byK[a]] < spec.Fracs[byK[b]] })

	if c == nil {
		c = g.Freeze()
	}
	perTrial := make([][][]float64, trials)
	err = par.ForEachErr(spec.Workers, trials, func(trial int) error {
		if err := errs.Ctx(ctx); err != nil {
			return fmt.Errorf("robust: sweep trial %d: %w", trial, err)
		}
		order, err := atk.Schedule(ctx, g, resolved, rng.Derive(seed, trial))
		if err != nil {
			return fmt.Errorf("robust: sweep trial %d: attack %q: %w", trial, atk.Name(), err)
		}
		if err := checkSchedule(order, total, atk.Name()); err != nil {
			return err
		}
		vals := make([][]float64, len(metricNames))
		for mi := range vals {
			vals[mi] = make([]float64, len(spec.Fracs))
		}
		switch {
		case incremental:
			sizes := lccNodeTrajectory
			if atk.Target() == attackreg.Edges {
				sizes = lccEdgeTrajectory
			}
			traj := sizes(c, order)
			for _, i := range byK {
				k := int(spec.Fracs[i] * float64(total))
				vals[0][i] = float64(traj[k]) / float64(n)
			}
		case atk.Target() == attackreg.Nodes:
			accs, err := mset.NewAccumulators()
			if err != nil {
				return err
			}
			ws := graph.GetWorkspace(n)
			defer ws.Release()
			removed := make([]bool, n)
			prev := 0
			for _, i := range byK {
				k := int(spec.Fracs[i] * float64(total))
				for ; prev < k; prev++ {
					removed[order[prev]] = true
				}
				for mi, acc := range accs {
					vals[mi][i] = acc.EvaluateMasked(ws, c, removed)
				}
			}
		default: // edge-targeted, masked
			ws := graph.GetWorkspace(n)
			defer ws.Release()
			removedEdge := make([]bool, total)
			prev := 0
			for _, i := range byK {
				k := int(spec.Fracs[i] * float64(total))
				for ; prev < k; prev++ {
					removedEdge[order[prev]] = true
				}
				vals[0][i] = float64(c.LargestComponentEdgeMasked(ws, removedEdge)) / float64(n)
			}
		}
		perTrial[trial] = vals
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]MetricCurve, len(metricNames))
	for mi, name := range metricNames {
		out[mi] = MetricCurve{Name: name, Values: make([]float64, len(spec.Fracs))}
	}
	for _, vals := range perTrial {
		for mi := range vals {
			for i, v := range vals[mi] {
				out[mi].Values[i] += v
			}
		}
	}
	for mi := range out {
		for i := range out[mi].Values {
			out[mi].Values[i] /= float64(trials)
		}
	}
	return out, nil
}

// ValidateFracs is the one shared removal-fraction check: every sweep
// fraction must be a real number in [0, 1]. NaN is rejected explicitly
// — it fails both range comparisons, so an inline `f < 0 || f > 1`
// check silently admits it and the schedule prefix `int(NaN * total)`
// is implementation-defined garbage. Both the sweep engine and the
// scenario attack-stage validation call this; errors wrap
// errs.ErrBadParam.
func ValidateFracs(fracs []float64) error {
	for _, f := range fracs {
		if math.IsNaN(f) || f < 0 || f > 1 {
			return errs.BadParamf("robust: removal fraction %v out of [0,1]", f)
		}
	}
	return nil
}

// checkSchedule rejects schedules that are not complete permutations of
// [0, total) — a misbehaving custom attack surfaces as ErrBadParam, not
// an index panic or a silently wrong curve.
func checkSchedule(order []int, total int, name string) error {
	if len(order) != total {
		return errs.BadParamf("robust: attack %q schedule has %d entries, want %d", name, len(order), total)
	}
	seen := make([]bool, total)
	for _, v := range order {
		if v < 0 || v >= total || seen[v] {
			return errs.BadParamf("robust: attack %q schedule is not a permutation of [0,%d)", name, total)
		}
		seen[v] = true
	}
	return nil
}
