package robust

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/errs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metricreg"
	"repro/internal/params"
)

func star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{})
	}
	for i := 1; i < n; i++ {
		g.AddEdge(graph.Edge{U: 0, V: i, Weight: 1})
	}
	return g
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep(graph.New(0), RandomFailure, []float64{0.1}, 1, 1); err == nil {
		t.Fatal("empty graph should error")
	}
	g := star(10)
	if _, err := Sweep(g, RandomFailure, []float64{1.1}, 1, 1); err == nil {
		t.Fatal("fraction > 1 should error")
	}
	if _, err := Sweep(g, RandomFailure, []float64{-0.1}, 1, 1); err == nil {
		t.Fatal("negative fraction should error")
	}
	// Full removal is a legal sweep point: the curve ends at zero.
	pts, err := Sweep(g, RandomFailure, []float64{1.0}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].LCCFrac != 0 {
		t.Fatalf("full removal LCC frac = %v, want 0", pts[0].LCCFrac)
	}
}

func TestSweepZeroRemovalIsIntact(t *testing.T) {
	g := star(20)
	pts, err := Sweep(g, RandomFailure, []float64{0}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].LCCFrac != 1 {
		t.Fatalf("intact LCC frac = %v, want 1", pts[0].LCCFrac)
	}
}

func TestDegreeAttackKillsStarInstantly(t *testing.T) {
	g := star(100)
	pts, err := Sweep(g, DegreeAttack, []float64{0.02}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Removing 2 nodes, the first being the hub, shatters the star.
	if pts[0].LCCFrac > 0.02 {
		t.Fatalf("star survived degree attack: LCC %v", pts[0].LCCFrac)
	}
}

func TestRandomFailureGentlerThanAttackOnStar(t *testing.T) {
	g := star(100)
	gap, err := AttackGap(g, DegreeAttack, []float64{0.02, 0.05, 0.1}, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gap <= 0 {
		t.Fatalf("star attack gap = %v, want positive (hub attack devastates)", gap)
	}
}

func TestBetweennessAttack(t *testing.T) {
	// A dumbbell: two cliques joined via one relay node. Betweenness
	// attack removes the relay first.
	g := graph.New(9)
	for i := 0; i < 9; i++ {
		g.AddNode(graph.Node{})
	}
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.AddEdge(graph.Edge{U: u, V: v, Weight: 1})
		}
	}
	for u := 5; u < 9; u++ {
		for v := u + 1; v < 9; v++ {
			g.AddEdge(graph.Edge{U: u, V: v, Weight: 1})
		}
	}
	g.AddEdge(graph.Edge{U: 3, V: 4, Weight: 1})
	g.AddEdge(graph.Edge{U: 4, V: 5, Weight: 1})
	pts, err := Sweep(g, BetweennessAttack, []float64{0.12}, 1, 1) // removes 1 node
	if err != nil {
		t.Fatal(err)
	}
	// Removing the relay leaves LCC of 4/9.
	if pts[0].LCCFrac > 0.5 {
		t.Fatalf("betweenness attack failed to cut the dumbbell: %v", pts[0].LCCFrac)
	}
}

func TestSweepMonotoneNonIncreasing(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{RandomFailure, DegreeAttack, BetweennessAttack} {
		pts, err := Sweep(g, strat, []float64{0, 0.1, 0.2, 0.4, 0.6}, 5, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].LCCFrac > pts[i-1].LCCFrac+1e-9 {
				t.Fatalf("%v curve not non-increasing: %v", strat, pts)
			}
		}
	}
}

func TestScaleFreeMoreFragileThanRandomGraph(t *testing.T) {
	// The classic HOT-adjacent result: under degree attack, a BA
	// scale-free graph loses connectivity much faster than an ER graph
	// of the same density.
	n := 400
	ba, err := gen.BarabasiAlbert(n, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	er, err := gen.ErdosRenyiGNM(n, ba.NumEdges(), 5)
	if err != nil {
		t.Fatal(err)
	}
	fracs := []float64{0.05, 0.1, 0.2, 0.3}
	gapBA, err := AttackGap(ba, DegreeAttack, fracs, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	gapER, err := AttackGap(er, DegreeAttack, fracs, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if gapBA <= gapER {
		t.Fatalf("BA attack gap %v should exceed ER %v", gapBA, gapER)
	}
}

func TestCriticalFraction(t *testing.T) {
	g := star(100)
	// Degree attack destroys the star immediately.
	f, err := CriticalFraction(g, DegreeAttack, 0.5, 20, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if f > 0.1 {
		t.Fatalf("star critical fraction under attack = %v, want tiny", f)
	}
	if _, err := CriticalFraction(g, DegreeAttack, 0.5, 0, 1, 7); err == nil {
		t.Fatal("steps=0 should error")
	}
}

func TestCriticalFractionNeverDegrades(t *testing.T) {
	// A complete graph only loses what is removed; with threshold 0.01
	// no grid fraction below 1 drops it under threshold.
	g := graph.New(20)
	for i := 0; i < 20; i++ {
		g.AddNode(graph.Node{})
	}
	for u := 0; u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			g.AddEdge(graph.Edge{U: u, V: v, Weight: 1})
		}
	}
	f, err := CriticalFraction(g, RandomFailure, 0.01, 10, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 {
		t.Fatalf("complete graph critical fraction = %v, want 1", f)
	}
}

func TestStrategyStrings(t *testing.T) {
	for _, s := range []Strategy{RandomFailure, DegreeAttack, BetweennessAttack} {
		if s.String() == "" {
			t.Fatal("empty strategy string")
		}
	}
}

func TestMetricSweepMultiMetric(t *testing.T) {
	g, err := gen.BarabasiAlbert(150, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	fracs := []float64{0.05, 0.2, 0.4}
	curves, err := MetricSweepContext(context.Background(), g, nil, DegreeAttack, fracs, 1, 7, 0,
		[]string{"lcc", "mean-degree"})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 || curves[0].Name != "lcc" || curves[1].Name != "mean-degree" {
		t.Fatalf("curves = %+v", curves)
	}
	for _, c := range curves {
		if len(c.Values) != len(fracs) {
			t.Fatalf("%s: %d values for %d fracs", c.Name, len(c.Values), len(fracs))
		}
		for i := 1; i < len(c.Values); i++ {
			if c.Values[i] > c.Values[i-1] {
				t.Fatalf("%s not non-increasing under degree attack: %v", c.Name, c.Values)
			}
		}
	}
}

func TestMetricSweepMatchesSweep(t *testing.T) {
	// Sweep is a thin composition over MetricSweepContext with "lcc";
	// the two paths must agree exactly.
	g, err := gen.BarabasiAlbert(120, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	fracs := []float64{0.1, 0.3}
	pts, err := Sweep(g, RandomFailure, fracs, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	curves, err := MetricSweepContext(context.Background(), g, nil, RandomFailure, fracs, 3, 11, 0, []string{"lcc"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fracs {
		if pts[i].LCCFrac != curves[0].Values[i] {
			t.Fatalf("frac %v: Sweep %v != MetricSweep %v", fracs[i], pts[i].LCCFrac, curves[0].Values[i])
		}
	}
}

func TestMetricSweepRejections(t *testing.T) {
	g := star(10)
	cases := []struct {
		name    string
		metrics []string
	}{
		{"unknown metric", []string{"nope"}},
		{"non-masked metric", []string{"clustering"}},
		{"empty set", nil},
	}
	for _, tc := range cases {
		_, err := MetricSweepContext(context.Background(), g, nil, RandomFailure, []float64{0.1}, 1, 1, 0, tc.metrics)
		if !errors.Is(err, errs.ErrBadParam) {
			t.Errorf("%s: got %v, want ErrBadParam", tc.name, err)
		}
	}
}

func TestMetricSweepWorkerDeterminism(t *testing.T) {
	g, err := gen.BarabasiAlbert(140, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fracs := []float64{0.05, 0.15, 0.35}
	one, err := MetricSweepContext(context.Background(), g, nil, RandomFailure, fracs, 6, 3, 1,
		[]string{"lcc", "mean-degree"})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := MetricSweepContext(context.Background(), g, nil, RandomFailure, fracs, 6, 3, 8,
		[]string{"lcc", "mean-degree"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("workers=1 vs 8 diverged:\n%v\nvs\n%v", one, eight)
	}
}

// inertAcc implements only the bulk role — a metric registering it
// while declaring CapMasked is misregistered, and MetricSweepContext
// must reject it rather than panic.
type inertAcc struct{}

func (inertAcc) Finalize() metricreg.Value                                         { return metricreg.Value{} }
func (inertAcc) Run(ctx context.Context, src *metricreg.Source, workers int) error { return nil }

func TestMetricSweepRejectsMisregisteredMaskedMetric(t *testing.T) {
	err := metricreg.Register(&metricreg.FuncMetric{
		MetricName: "test-bad-masked",
		MetricCaps: metricreg.CapMasked,
		NewFn:      func(params.Params, int64) metricreg.Accumulator { return inertAcc{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	g := star(12)
	_, err = MetricSweepContext(context.Background(), g, nil, RandomFailure, []float64{0.1}, 2, 1, 0,
		[]string{"test-bad-masked"})
	if !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("misregistered masked metric gave %v, want ErrBadParam", err)
	}
}
