package robust

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/attackreg"
	"repro/internal/errs"
	"repro/internal/gen"
	"repro/internal/graph"
)

// parityModels builds the generator-model spread the parity tests pin:
// a preferential-attachment hub topology, a same-density Erdős–Rényi
// baseline, and a geometric Waxman graph (disconnected components and
// coordinate structure), each at two seeds.
func parityModels(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	out := map[string]*graph.Graph{}
	for _, seed := range []int64{1, 2} {
		ba, err := gen.BarabasiAlbert(250, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprintf("ba/seed=%d", seed)] = ba
		er, err := gen.ErdosRenyiGNM(250, ba.NumEdges(), seed)
		if err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprintf("er/seed=%d", seed)] = er
		wx, err := gen.Waxman(250, 0.6, 0.15, seed)
		if err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprintf("waxman/seed=%d", seed)] = wx
	}
	return out
}

// TestIncrementalParity is the engine's core contract: for every
// generator model, seed, and attack — node- and edge-targeted,
// deterministic and randomized — the reverse union-find trajectory must
// be bit-for-bit identical to the masked-BFS path, full removal
// included.
func TestIncrementalParity(t *testing.T) {
	fracs := []float64{0, 0.03, 0.1, 0.25, 0.5, 0.8, 1}
	attacks := []string{
		"random-failure", "degree", "adaptive-degree", "betweenness",
		"geographic", "preferential", "random-edge", "bottleneck-edge",
	}
	for name, g := range parityModels(t) {
		c := g.Freeze()
		for _, attack := range attacks {
			spec := SweepSpec{Attack: attack, Fracs: fracs, Trials: 3}
			spec.Mode = ModeMasked
			masked, err := RunSweepContext(context.Background(), g, c, spec, 11)
			if err != nil {
				t.Fatalf("%s/%s masked: %v", name, attack, err)
			}
			spec.Mode = ModeIncremental
			incr, err := RunSweepContext(context.Background(), g, c, spec, 11)
			if err != nil {
				t.Fatalf("%s/%s incremental: %v", name, attack, err)
			}
			if !reflect.DeepEqual(masked, incr) {
				t.Fatalf("%s/%s: paths diverged\nmasked:      %v\nincremental: %v",
					name, attack, masked[0].Values, incr[0].Values)
			}
		}
	}
}

// TestAutoModeMatchesLegacySweep pins that the default (auto,
// incremental) SweepContext path reproduces the masked MetricSweep
// curve exactly — the compatibility guarantee for every caller that
// upgraded for free.
func TestAutoModeMatchesLegacySweep(t *testing.T) {
	g, err := gen.BarabasiAlbert(180, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	fracs := []float64{0.05, 0.2, 0.6}
	pts, err := Sweep(g, RandomFailure, fracs, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	curves, err := MetricSweepContext(context.Background(), g, nil, RandomFailure, fracs, 4, 5, 0, []string{"lcc"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fracs {
		if pts[i].LCCFrac != curves[0].Values[i] {
			t.Fatalf("frac %v: auto %v != masked %v", fracs[i], pts[i].LCCFrac, curves[0].Values[i])
		}
	}
}

func TestSweepEdgeCasesBothPaths(t *testing.T) {
	single := graph.New(1)
	single.AddNode(graph.Node{})
	pair := graph.New(2)
	pair.AddNode(graph.Node{})
	pair.AddNode(graph.Node{})
	pair.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1})

	for _, mode := range []Mode{ModeMasked, ModeIncremental} {
		// Empty graph: rejected on both paths.
		_, err := RunSweepContext(context.Background(), graph.New(0), nil,
			SweepSpec{Attack: "random-failure", Fracs: []float64{0.1}, Mode: mode}, 1)
		if !errors.Is(err, errs.ErrBadParam) {
			t.Fatalf("%v: empty graph gave %v, want ErrBadParam", mode, err)
		}

		// Single node: frac 0 keeps it (LCC 1), frac 1 removes it (LCC 0).
		curves, err := RunSweepContext(context.Background(), single, nil,
			SweepSpec{Attack: "degree", Fracs: []float64{0, 1}, Mode: mode}, 1)
		if err != nil {
			t.Fatalf("%v: single node: %v", mode, err)
		}
		if got := curves[0].Values; got[0] != 1 || got[1] != 0 {
			t.Fatalf("%v: single-node curve = %v, want [1 0]", mode, got)
		}

		// Single node under an edge attack: no edges exist, so every
		// fraction leaves the intact graph.
		curves, err = RunSweepContext(context.Background(), single, nil,
			SweepSpec{Attack: "random-edge", Fracs: []float64{0, 0.5, 1}, Mode: mode}, 1)
		if err != nil {
			t.Fatalf("%v: single node edge attack: %v", mode, err)
		}
		for i, v := range curves[0].Values {
			if v != 1 {
				t.Fatalf("%v: edgeless edge-attack value[%d] = %v, want 1", mode, i, v)
			}
		}

		// frac 0 and frac 1 on a 2-node graph, node and edge targets.
		curves, err = RunSweepContext(context.Background(), pair, nil,
			SweepSpec{Attack: "random-failure", Fracs: []float64{0, 1}, Trials: 2, Mode: mode}, 3)
		if err != nil {
			t.Fatalf("%v: pair: %v", mode, err)
		}
		if got := curves[0].Values; got[0] != 1 || got[1] != 0 {
			t.Fatalf("%v: pair node curve = %v, want [1 0]", mode, got)
		}
		curves, err = RunSweepContext(context.Background(), pair, nil,
			SweepSpec{Attack: "random-edge", Fracs: []float64{0, 1}, Trials: 2, Mode: mode}, 3)
		if err != nil {
			t.Fatalf("%v: pair edges: %v", mode, err)
		}
		if got := curves[0].Values; got[0] != 1 || got[1] != 0.5 {
			t.Fatalf("%v: pair edge curve = %v, want [1 0.5]", mode, got)
		}
	}
}

// TestAttackGapBaselineMatchesTarget pins that the gap baseline shares
// the attack's removal denominator: for the uniform random attack on
// either target, baseline and attack are the same sweep, so the gap is
// exactly zero — which fails if an edge attack were compared against
// node-removal random failure.
func TestAttackGapBaselineMatchesTarget(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, attack := range []string{"random-failure", "random-edge"} {
		gap, err := AttackGapContext(context.Background(), g, nil, attack, nil,
			[]float64{0.1, 0.3, 0.6}, 3, 7, 0)
		if err != nil {
			t.Fatal(err)
		}
		if gap != 0 {
			t.Fatalf("%s vs its own baseline: gap = %v, want exactly 0", attack, gap)
		}
	}
	if name := BaselineFor(attackreg.Edges); name != "random-edge" {
		t.Fatalf("edge baseline = %q", name)
	}
}

func TestRunSweepSpecValidation(t *testing.T) {
	g, err := gen.BarabasiAlbert(30, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		spec SweepSpec
	}{
		{"unknown attack", SweepSpec{Attack: "nope", Fracs: []float64{0.1}}},
		{"bad attack param", SweepSpec{Attack: "geographic", Params: attackreg.Params{"z": 1}, Fracs: []float64{0.1}}},
		{"fraction above 1", SweepSpec{Attack: "degree", Fracs: []float64{1.5}}},
		{"negative fraction", SweepSpec{Attack: "degree", Fracs: []float64{-0.5}}},
		{"incremental non-lcc", SweepSpec{Attack: "degree", Fracs: []float64{0.1},
			Metrics: []string{"mean-degree"}, Mode: ModeIncremental}},
		{"edge attack non-lcc", SweepSpec{Attack: "random-edge", Fracs: []float64{0.1},
			Metrics: []string{"lcc", "mean-degree"}}},
		{"unknown metric", SweepSpec{Attack: "degree", Fracs: []float64{0.1},
			Metrics: []string{"nope"}, Mode: ModeMasked}},
		{"bad mode", SweepSpec{Attack: "degree", Fracs: []float64{0.1}, Mode: Mode(99)}},
	}
	for _, tc := range cases {
		if _, err := RunSweepContext(context.Background(), g, nil, tc.spec, 1); !errors.Is(err, errs.ErrBadParam) {
			t.Errorf("%s: got %v, want ErrBadParam", tc.name, err)
		}
	}
}

func TestCheckScheduleRejectsNonPermutations(t *testing.T) {
	for _, tc := range []struct {
		order []int
		total int
	}{
		{[]int{0, 1}, 3},
		{[]int{0, 0, 1}, 3},
		{[]int{0, 1, 3}, 3},
		{[]int{0, 1, -1}, 3},
	} {
		if err := checkSchedule(tc.order, tc.total, "x"); !errors.Is(err, errs.ErrBadParam) {
			t.Errorf("checkSchedule(%v, %d) = %v, want ErrBadParam", tc.order, tc.total, err)
		}
	}
	if err := checkSchedule([]int{2, 0, 1}, 3, "x"); err != nil {
		t.Fatalf("valid permutation rejected: %v", err)
	}
}

func TestModeStringAndParse(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode Mode
	}{{"auto", ModeAuto}, {"masked", ModeMasked}, {"incremental", ModeIncremental}} {
		m, err := ParseMode(tc.name)
		if err != nil || m != tc.mode {
			t.Fatalf("ParseMode(%q) = %v, %v", tc.name, m, err)
		}
		if m.String() != tc.name {
			t.Fatalf("%v.String() = %q", m, m.String())
		}
	}
	if m, err := ParseMode(""); err != nil || m != ModeAuto {
		t.Fatalf("empty mode = %v, %v", m, err)
	}
	if _, err := ParseMode("nope"); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("unknown mode gave %v, want ErrBadParam", err)
	}
}
