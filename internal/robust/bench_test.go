package robust

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// The sweep benches pit the two evaluation paths against each other on
// the same 10k-node schedule at a 2% fraction grid (the resolution a
// real resilience curve wants): the masked path pays one masked BFS per
// removal fraction, the incremental path one reverse union-find pass
// for the whole trajectory regardless of grid density. The acceptance
// bar for the incremental engine is >= 3x on this workload.

func benchSweepInputs(b *testing.B) (*graph.Graph, *graph.CSR, []float64) {
	b.Helper()
	g, err := gen.BarabasiAlbert(10000, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	fracs := make([]float64, 50)
	for i := range fracs {
		fracs[i] = float64(i) / 50
	}
	return g, g.Freeze(), fracs
}

func benchSweep(b *testing.B, mode Mode) {
	g, c, fracs := benchSweepInputs(b)
	spec := SweepSpec{Attack: "degree", Fracs: fracs, Mode: mode, Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSweepContext(context.Background(), g, c, spec, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepMasked10k(b *testing.B)      { benchSweep(b, ModeMasked) }
func BenchmarkSweepIncremental10k(b *testing.B) { benchSweep(b, ModeIncremental) }

// BenchmarkSweepRandomFailure10k measures the default (auto) path under
// the trial-averaged random-failure sweep the experiments run hottest.
func BenchmarkSweepRandomFailure10k(b *testing.B) {
	g, c, fracs := benchSweepInputs(b)
	spec := SweepSpec{Attack: "random-failure", Fracs: fracs, Trials: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSweepContext(context.Background(), g, c, spec, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// The timeline benches pit the epoch-based engine against per-event
// from-scratch recompute on a 50-event outage-and-recovery schedule:
// five cycles of eight fails and two repairs (~10 monotone epochs). The
// epoch engine pays one near-linear rebuild per epoch; the recompute
// path one full masked traversal per event. The acceptance bar for the
// epoch engine is >= 3x on this workload.

func benchTimelineInputs(b *testing.B) (*graph.CSR, []TimelineEvent) {
	b.Helper()
	g, err := gen.BarabasiAlbert(10000, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumNodes()
	events := make([]TimelineEvent, 0, 50)
	next := 1
	for cycle := 0; cycle < 5; cycle++ {
		start := next
		for i := 0; i < 8; i++ {
			events = append(events, TimelineEvent{Op: OpFailNode, ID: (next * 2654435761) % n})
			next++
		}
		for i := 0; i < 2; i++ {
			events = append(events, TimelineEvent{Op: OpRepairNode, ID: ((start + i) * 2654435761) % n})
		}
	}
	return g.Freeze(), events
}

func benchTimeline(b *testing.B, mode TimelineMode) {
	c, events := benchTimelineInputs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunTimeline(c, events, nil, mode, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTimelineEpochVsRecompute(b *testing.B) {
	b.Run("epoch", func(b *testing.B) { benchTimeline(b, TimelineEpoch) })
	b.Run("recompute", func(b *testing.B) { benchTimeline(b, TimelineMasked) })
}
