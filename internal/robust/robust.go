// Package robust implements the failure/attack harness for experiment E8:
// the HOT prediction (paper §3.1) that optimization-designed topologies
// are "robust yet fragile" — they tolerate the random component failures
// they were implicitly designed around, while targeted removal of their
// rare, load-bearing hubs causes disproportionate damage.
package robust

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/metricreg"
	"repro/internal/par"
	"repro/internal/rng"
)

// Strategy selects the node-removal order.
type Strategy int

// Removal strategies.
const (
	// RandomFailure removes nodes uniformly at random.
	RandomFailure Strategy = iota
	// DegreeAttack removes nodes in decreasing degree order (recomputed
	// statically from the intact graph).
	DegreeAttack
	// BetweennessAttack removes nodes in decreasing betweenness order
	// (static, computed once on the intact graph).
	BetweennessAttack
	// AdaptiveDegreeAttack recomputes degrees after every removal and
	// always removes the currently highest-degree node — strictly
	// deadlier than the static version on hub topologies.
	AdaptiveDegreeAttack
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case DegreeAttack:
		return "degree-attack"
	case BetweennessAttack:
		return "betweenness-attack"
	case AdaptiveDegreeAttack:
		return "adaptive-degree-attack"
	default:
		return "random-failure"
	}
}

// ParseStrategy maps a strategy name (as produced by String, with the
// "-attack"/"-failure" suffix optional) back to its Strategy value,
// wrapping errs.ErrBadParam for unknown names.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "random", "random-failure":
		return RandomFailure, nil
	case "degree", "degree-attack":
		return DegreeAttack, nil
	case "betweenness", "betweenness-attack":
		return BetweennessAttack, nil
	case "adaptive-degree", "adaptive-degree-attack":
		return AdaptiveDegreeAttack, nil
	default:
		return 0, errs.BadParamf("robust: unknown attack strategy %q", name)
	}
}

// SweepPoint is connectivity after removing a fraction of nodes.
type SweepPoint struct {
	FracRemoved float64
	// LCCFrac is the largest connected component size divided by the
	// original node count.
	LCCFrac float64
}

// Sweep removes nodes per the strategy at each fraction in fracs
// (cumulatively consistent: larger fractions are supersets) and reports
// the largest-component curve. Random failure averages over trials; the
// deterministic attacks use a single pass.
//
// The graph is frozen into one CSR snapshot; each trial extends a single
// node-removal mask through the fractions (smallest first) and measures
// the largest surviving component in place, instead of materializing a
// RemoveNodes subgraph per point. Trials run in parallel across all
// available cores and are reduced in trial order, so the curve is
// byte-identical for any level of parallelism.
func Sweep(g *graph.Graph, strat Strategy, fracs []float64, trials int, seed int64) ([]SweepPoint, error) {
	return SweepContext(context.Background(), g, nil, strat, fracs, trials, seed, 0)
}

// SweepContext is Sweep with cancellation, an optional pre-frozen
// snapshot, and an explicit worker bound. Pass the CSR from an earlier
// Freeze of g to skip re-freezing (nil freezes internally); workers <= 0
// means GOMAXPROCS. Each trial checks ctx before it starts and the
// removal-order computation checks it up front, so a canceled context
// surfaces as an errs.ErrCanceled-wrapping error promptly.
//
// It is a thin composition over MetricSweepContext with the registry's
// "lcc" metric — the robustness sweep is "re-evaluate a metric set
// under a mask schedule".
func SweepContext(ctx context.Context, g *graph.Graph, c *graph.CSR, strat Strategy, fracs []float64, trials int, seed int64, workers int) ([]SweepPoint, error) {
	curves, err := MetricSweepContext(ctx, g, c, strat, fracs, trials, seed, workers, []string{"lcc"})
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(fracs))
	for i, f := range fracs {
		out[i] = SweepPoint{FracRemoved: f, LCCFrac: curves[0].Values[i]}
	}
	return out, nil
}

// MetricCurve is one masked metric's sweep output: Values[i] is the
// metric evaluated after removing the fraction of nodes at the caller's
// fracs[i] (averaged over trials for random failure).
type MetricCurve struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// MetricSweepContext generalizes the robustness sweep to any set of
// masked-capable registry metrics (CapMasked, e.g. "lcc",
// "mean-degree"): per trial, one node-removal mask is extended through
// the fractions (smallest first) and every metric's accumulator —
// built once per trial and reused across the attack steps — re-reads
// the shared snapshot in place. Trials fan out across the worker pool
// and are reduced in trial order, so every curve is byte-identical for
// any level of parallelism. Unknown or non-masked metrics wrap
// errs.ErrBadParam.
func MetricSweepContext(ctx context.Context, g *graph.Graph, c *graph.CSR, strat Strategy, fracs []float64, trials int, seed int64, workers int, metricNames []string) ([]MetricCurve, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errs.BadParamf("robust: empty graph")
	}
	for _, f := range fracs {
		if f < 0 || f >= 1 {
			return nil, errs.BadParamf("robust: removal fraction %v out of [0,1)", f)
		}
	}
	if len(metricNames) == 0 {
		return nil, errs.BadParamf("robust: empty metric set")
	}
	// Resolve the metric set up front; each trial builds its own
	// accumulators from these factories. A metric that declares
	// CapMasked but whose accumulator cannot evaluate masked is a
	// registration bug surfaced as ErrBadParam, not a panic.
	factories := make([]func() (metricreg.MaskedAccumulator, bool), len(metricNames))
	for i, name := range metricNames {
		m, err := metricreg.Lookup(name)
		if err != nil {
			return nil, err
		}
		if m.Caps()&metricreg.CapMasked == 0 {
			return nil, errs.BadParamf("robust: metric %q does not support masked evaluation", name)
		}
		resolved, err := metricreg.Resolve(m, nil)
		if err != nil {
			return nil, err
		}
		factories[i] = func() (metricreg.MaskedAccumulator, bool) {
			acc, ok := m.New(resolved, seed).(metricreg.MaskedAccumulator)
			return acc, ok
		}
	}
	if strat != RandomFailure {
		trials = 1
	}
	if trials < 1 {
		trials = 1
	}
	// Visit fractions in increasing removal-count order so each trial's
	// mask only ever grows; results land at the caller's original index.
	byK := make([]int, len(fracs))
	for i := range byK {
		byK[i] = i
	}
	sort.SliceStable(byK, func(a, b int) bool { return fracs[byK[a]] < fracs[byK[b]] })

	if c == nil {
		c = g.Freeze()
	}
	perTrial := make([][][]float64, trials)
	err := par.ForEachErr(workers, trials, func(trial int) error {
		if err := errs.Ctx(ctx); err != nil {
			return fmt.Errorf("robust: sweep trial %d: %w", trial, err)
		}
		order := removalOrder(g, strat, rng.Derive(seed, trial))
		accs := make([]metricreg.MaskedAccumulator, len(factories))
		for mi, f := range factories {
			acc, ok := f()
			if !ok {
				return errs.BadParamf("robust: metric %q accumulator cannot evaluate masked", metricNames[mi])
			}
			accs[mi] = acc
		}
		ws := graph.GetWorkspace(n)
		defer ws.Release()
		removed := make([]bool, n)
		vals := make([][]float64, len(accs))
		for mi := range vals {
			vals[mi] = make([]float64, len(fracs))
		}
		prev := 0
		for _, i := range byK {
			k := int(fracs[i] * float64(n))
			for ; prev < k; prev++ {
				removed[order[prev]] = true
			}
			for mi, acc := range accs {
				vals[mi][i] = acc.EvaluateMasked(ws, c, removed)
			}
		}
		perTrial[trial] = vals
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]MetricCurve, len(metricNames))
	for mi, name := range metricNames {
		out[mi] = MetricCurve{Name: name, Values: make([]float64, len(fracs))}
	}
	for _, vals := range perTrial {
		for mi := range vals {
			for i, v := range vals[mi] {
				out[mi].Values[i] += v
			}
		}
	}
	for mi := range out {
		for i := range out[mi].Values {
			out[mi].Values[i] /= float64(trials)
		}
	}
	return out, nil
}

// removalOrder returns all node ids in removal order for the strategy.
func removalOrder(g *graph.Graph, strat Strategy, seed int64) []int {
	n := g.NumNodes()
	switch strat {
	case DegreeAttack:
		deg := g.Degrees()
		order := seqInts(n)
		sort.SliceStable(order, func(a, b int) bool {
			return deg[order[a]] > deg[order[b]]
		})
		return order
	case BetweennessAttack:
		bc := g.Betweenness()
		order := seqInts(n)
		sort.SliceStable(order, func(a, b int) bool {
			return bc[order[a]] > bc[order[b]]
		})
		return order
	case AdaptiveDegreeAttack:
		return adaptiveDegreeOrder(g)
	default:
		return rng.Shuffle(rng.New(seed), n)
	}
}

// adaptiveDegreeOrder greedily removes the currently highest-degree node
// (ties to the lowest id), maintaining residual degrees incrementally.
func adaptiveDegreeOrder(g *graph.Graph) []int {
	n := g.NumNodes()
	deg := g.Degrees()
	removed := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		best := -1
		for v := 0; v < n; v++ {
			if removed[v] {
				continue
			}
			if best == -1 || deg[v] > deg[best] {
				best = v
			}
		}
		removed[best] = true
		order = append(order, best)
		g.Neighbors(best, func(u, _ int) {
			if !removed[u] {
				deg[u]--
			}
		})
	}
	return order
}

// AttackGap summarizes robust-yet-fragile in one number: the area between
// the random-failure curve and the attack curve over the given fractions
// (positive = attacks hurt more than failures; larger = more fragile to
// targeting).
func AttackGap(g *graph.Graph, attack Strategy, fracs []float64, trials int, seed int64) (float64, error) {
	randCurve, err := Sweep(g, RandomFailure, fracs, trials, seed)
	if err != nil {
		return 0, err
	}
	atkCurve, err := Sweep(g, attack, fracs, 1, seed)
	if err != nil {
		return 0, err
	}
	gap := 0.0
	for i := range fracs {
		gap += randCurve[i].LCCFrac - atkCurve[i].LCCFrac
	}
	return gap / float64(len(fracs)), nil
}

// CriticalFraction estimates the removal fraction at which the largest
// component first drops below `threshold` of the original size, by linear
// scan over a uniform grid of `steps` fractions. Returns 1 if the network
// never degrades below the threshold within the grid.
func CriticalFraction(g *graph.Graph, strat Strategy, threshold float64, steps, trials int, seed int64) (float64, error) {
	if steps < 1 {
		return 0, errs.BadParamf("robust: need steps >= 1")
	}
	fracs := make([]float64, steps)
	for i := range fracs {
		fracs[i] = float64(i) / float64(steps)
	}
	curve, err := Sweep(g, strat, fracs, trials, seed)
	if err != nil {
		return 0, err
	}
	for _, pt := range curve {
		if pt.LCCFrac < threshold {
			return pt.FracRemoved, nil
		}
	}
	return 1, nil
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
