// Package robust implements the failure/attack harness for experiment E8:
// the HOT prediction (paper §3.1) that optimization-designed topologies
// are "robust yet fragile" — they tolerate the random component failures
// they were implicitly designed around, while targeted removal of their
// rare, load-bearing hubs causes disproportionate damage.
//
// Attacks live in the attack registry (internal/attackreg): every node-
// or edge-removal strategy is registered by name with typed parameters,
// mirroring the generator and metric registries. The sweep engine
// (RunSweepContext) traces a metric set along each attack schedule via
// one of two bit-for-bit identical evaluation paths: masked-metric
// re-evaluation (any CapMasked metric set) or the reverse union-find
// incremental trajectory (LCC only, near-linear in the whole schedule).
// The Strategy enum below remains as a stable shorthand for the four
// original attacks.
package robust

import (
	"context"

	"repro/internal/attackreg"
	"repro/internal/errs"
	"repro/internal/graph"
)

// Strategy selects the node-removal order of the four original attacks;
// the attack registry generalizes it to arbitrary named attacks with
// parameters.
type Strategy int

// Removal strategies.
const (
	// RandomFailure removes nodes uniformly at random.
	RandomFailure Strategy = iota
	// DegreeAttack removes nodes in decreasing degree order (recomputed
	// statically from the intact graph).
	DegreeAttack
	// BetweennessAttack removes nodes in decreasing betweenness order
	// (static, computed once on the intact graph).
	BetweennessAttack
	// AdaptiveDegreeAttack recomputes degrees after every removal and
	// always removes the currently highest-degree node — strictly
	// deadlier than the static version on hub topologies.
	AdaptiveDegreeAttack
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case DegreeAttack:
		return "degree-attack"
	case BetweennessAttack:
		return "betweenness-attack"
	case AdaptiveDegreeAttack:
		return "adaptive-degree-attack"
	default:
		return "random-failure"
	}
}

// AttackName returns the strategy's attack-registry name.
func (s Strategy) AttackName() string { return attackreg.Canonical(s.String()) }

// ParseStrategy maps a strategy name (as produced by String, with the
// "-attack"/"-failure" suffix optional) back to its Strategy value,
// wrapping errs.ErrBadParam for unknown names. Registry attacks outside
// the original four have no Strategy; parse those with attackreg.Lookup.
func ParseStrategy(name string) (Strategy, error) {
	switch attackreg.Canonical(name) {
	case "random-failure":
		return RandomFailure, nil
	case "degree":
		return DegreeAttack, nil
	case "betweenness":
		return BetweennessAttack, nil
	case "adaptive-degree":
		return AdaptiveDegreeAttack, nil
	default:
		return 0, errs.BadParamf("robust: unknown attack strategy %q", name)
	}
}

// SweepPoint is connectivity after removing a fraction of nodes.
type SweepPoint struct {
	FracRemoved float64
	// LCCFrac is the largest connected component size divided by the
	// original node count.
	LCCFrac float64
}

// MetricCurve is one masked metric's sweep output: Values[i] is the
// metric evaluated after removing the fraction of nodes (or edges, for
// edge-targeted attacks) at the caller's fracs[i] (averaged over trials
// for randomized attacks).
type MetricCurve struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Sweep removes nodes per the strategy at each fraction in fracs
// (cumulatively consistent: larger fractions are supersets) and reports
// the largest-component curve. Randomized attacks average over trials;
// the deterministic attacks use a single pass.
func Sweep(g *graph.Graph, strat Strategy, fracs []float64, trials int, seed int64) ([]SweepPoint, error) {
	return SweepContext(context.Background(), g, nil, strat, fracs, trials, seed, 0)
}

// SweepContext is Sweep with cancellation, an optional pre-frozen
// snapshot, and an explicit worker bound. Pass the CSR from an earlier
// Freeze of g to skip re-freezing (nil freezes internally); workers <= 0
// means GOMAXPROCS.
//
// It is a thin composition over the sweep engine (RunSweepContext) in
// its default ModeAuto — the LCC curve rides the incremental reverse
// union-find path, bit-for-bit identical to (and much faster than) the
// masked path.
func SweepContext(ctx context.Context, g *graph.Graph, c *graph.CSR, strat Strategy, fracs []float64, trials int, seed int64, workers int) ([]SweepPoint, error) {
	curves, err := RunSweepContext(ctx, g, c, SweepSpec{
		Attack:  strat.AttackName(),
		Fracs:   fracs,
		Trials:  trials,
		Workers: workers,
	}, seed)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(fracs))
	for i, f := range fracs {
		out[i] = SweepPoint{FracRemoved: f, LCCFrac: curves[0].Values[i]}
	}
	return out, nil
}

// MetricSweepContext generalizes the robustness sweep to any set of
// masked-capable registry metrics (CapMasked, e.g. "lcc",
// "mean-degree"): per trial, one node-removal mask is extended through
// the fractions (smallest first) and every metric's accumulator —
// built once per trial and reused across the attack steps — re-reads
// the shared snapshot in place. Trials fan out across the worker pool
// and are reduced in trial order, so every curve is byte-identical for
// any level of parallelism. Unknown or non-masked metrics wrap
// errs.ErrBadParam. This is the engine's masked path; SweepContext
// takes the incremental path for the plain LCC curve.
func MetricSweepContext(ctx context.Context, g *graph.Graph, c *graph.CSR, strat Strategy, fracs []float64, trials int, seed int64, workers int, metricNames []string) ([]MetricCurve, error) {
	if len(metricNames) == 0 {
		return nil, errs.BadParamf("robust: empty metric set")
	}
	return RunSweepContext(ctx, g, c, SweepSpec{
		Attack:  strat.AttackName(),
		Fracs:   fracs,
		Trials:  trials,
		Metrics: metricNames,
		Mode:    ModeMasked,
		Workers: workers,
	}, seed)
}

// AttackGap summarizes robust-yet-fragile in one number: the area between
// the random-failure curve and the attack curve over the given fractions
// (positive = attacks hurt more than failures; larger = more fragile to
// targeting).
func AttackGap(g *graph.Graph, attack Strategy, fracs []float64, trials int, seed int64) (float64, error) {
	return AttackGapContext(context.Background(), g, nil, attack.AttackName(), nil, fracs, trials, seed, 0)
}

// AttackGapContext is AttackGap for any registered attack (by registry
// name, with optional parameters), with cancellation, an optional
// pre-frozen snapshot, and a worker bound. The baseline is the uniform
// random removal over the attack's own target — random-failure for
// node attacks, random-edge for edge attacks, so both curves share one
// removal denominator — averaged over trials; the attack side uses a
// single pass when the attack is deterministic and the same trial count
// otherwise.
func AttackGapContext(ctx context.Context, g *graph.Graph, c *graph.CSR, attack string, p attackreg.Params, fracs []float64, trials int, seed int64, workers int) (float64, error) {
	atk, err := attackreg.Lookup(attack)
	if err != nil {
		return 0, err
	}
	randCurve, err := RunSweepContext(ctx, g, c, SweepSpec{
		Attack: BaselineFor(atk.Target()), Fracs: fracs, Trials: trials, Workers: workers,
	}, seed)
	if err != nil {
		return 0, err
	}
	atkCurve, err := RunSweepContext(ctx, g, c, SweepSpec{
		Attack: attack, Params: p, Fracs: fracs, Trials: trials, Workers: workers,
	}, seed)
	if err != nil {
		return 0, err
	}
	gap := 0.0
	for i := range fracs {
		gap += randCurve[0].Values[i] - atkCurve[0].Values[i]
	}
	return gap / float64(len(fracs)), nil
}

// BaselineFor returns the uniform random-removal attack matching a
// schedule target — the denominator-consistent baseline for attack-gap
// comparisons.
func BaselineFor(target attackreg.Target) string {
	if target == attackreg.Edges {
		return "random-edge"
	}
	return "random-failure"
}

// CriticalFraction estimates the removal fraction at which the largest
// component first drops below `threshold` of the original size, by linear
// scan over a uniform grid of `steps` fractions. Returns 1 if the network
// never degrades below the threshold within the grid.
func CriticalFraction(g *graph.Graph, strat Strategy, threshold float64, steps, trials int, seed int64) (float64, error) {
	if steps < 1 {
		return 0, errs.BadParamf("robust: need steps >= 1")
	}
	fracs := make([]float64, steps)
	for i := range fracs {
		fracs[i] = float64(i) / float64(steps)
	}
	curve, err := Sweep(g, strat, fracs, trials, seed)
	if err != nil {
		return 0, err
	}
	for _, pt := range curve {
		if pt.LCCFrac < threshold {
			return pt.FracRemoved, nil
		}
	}
	return 1, nil
}
