package robust

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/errs"
	"repro/internal/graph"
)

// lineGraph builds a path graph 0-1-...-(n-1); edge i joins (i, i+1).
func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{})
	}
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.Edge{U: i, V: i + 1, Weight: 1})
	}
	return g
}

// timelineSchedule builds a deterministic interleaved fail/repair
// schedule over nodes and edges: blocks of failures followed by partial
// repairs, with deliberate no-ops (duplicate fails, repairs of
// never-failed items) mixed in.
func timelineSchedule(g *graph.Graph, seed int64, includeEdges bool) []TimelineEvent {
	r := rand.New(rand.NewSource(seed))
	n, m := g.NumNodes(), g.NumEdges()
	var events []TimelineEvent
	var failedNodes, failedEdges []int
	for block := 0; block < 4; block++ {
		for i := 0; i < 12; i++ {
			if includeEdges && r.Intn(2) == 0 {
				e := r.Intn(m)
				events = append(events, TimelineEvent{Op: OpFailEdge, ID: e})
				failedEdges = append(failedEdges, e)
			} else {
				v := r.Intn(n)
				events = append(events, TimelineEvent{Op: OpFailNode, ID: v})
				failedNodes = append(failedNodes, v)
			}
		}
		// Duplicate fail: re-fail something already failed (no-op).
		if len(failedNodes) > 0 {
			events = append(events, TimelineEvent{Op: OpFailNode, ID: failedNodes[0]})
		}
		// Repair roughly half of what this block failed, plus one repair
		// of a never-failed item (no-op).
		for i := 0; i < 6 && len(failedNodes) > 0; i++ {
			v := failedNodes[len(failedNodes)-1]
			failedNodes = failedNodes[:len(failedNodes)-1]
			events = append(events, TimelineEvent{Op: OpRepairNode, ID: v})
		}
		for i := 0; i < 3 && len(failedEdges) > 0; i++ {
			e := failedEdges[len(failedEdges)-1]
			failedEdges = failedEdges[:len(failedEdges)-1]
			events = append(events, TimelineEvent{Op: OpRepairEdge, ID: e})
		}
		events = append(events, TimelineEvent{Op: OpRepairNode, ID: r.Intn(n)})
		if includeEdges {
			events = append(events, TimelineEvent{Op: OpRepairEdge, ID: r.Intn(m)})
		}
	}
	return events
}

// TestTimelineParity is the engine's core contract: across every
// generator model and seed, for node-only and mixed node/edge
// schedules, the epoch-based trajectory must be bit-for-bit identical
// to the per-event from-scratch masked reference path.
func TestTimelineParity(t *testing.T) {
	for name, g := range parityModels(t) {
		c := g.Freeze()
		for _, includeEdges := range []bool{false, true} {
			events := timelineSchedule(g, 7, includeEdges)
			masked, err := RunTimeline(c, events, nil, TimelineMasked, 3)
			if err != nil {
				t.Fatalf("%s masked: %v", name, err)
			}
			epoch, err := RunTimeline(c, events, nil, TimelineEpoch, 3)
			if err != nil {
				t.Fatalf("%s epoch: %v", name, err)
			}
			if !reflect.DeepEqual(masked, epoch) {
				t.Fatalf("%s (edges=%v): paths diverged\nmasked: %v\nepoch:  %v",
					name, includeEdges, masked[0].Values, epoch[0].Values)
			}
			auto, err := RunTimeline(c, events, []string{"lcc"}, TimelineAuto, 3)
			if err != nil {
				t.Fatalf("%s auto: %v", name, err)
			}
			if !reflect.DeepEqual(masked, auto) {
				t.Fatalf("%s (edges=%v): auto diverged from masked", name, includeEdges)
			}
		}
	}
}

// TestTimelineMultiMetricMasked pins that node-only timelines trace a
// CapMasked metric set through the masked path and that row 0 matches
// the intact snapshot.
func TestTimelineMultiMetricMasked(t *testing.T) {
	g := lineGraph(t, 12)
	c := g.Freeze()
	events := []TimelineEvent{
		{Op: OpFailNode, ID: 5},
		{Op: OpFailNode, ID: 6},
		{Op: OpRepairNode, ID: 5},
	}
	curves, err := RunTimeline(c, events, []string{"lcc", "mean-degree"}, TimelineAuto, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 || curves[0].Name != "lcc" || curves[1].Name != "mean-degree" {
		t.Fatalf("unexpected curves: %+v", curves)
	}
	for _, cv := range curves {
		if len(cv.Values) != len(events)+1 {
			t.Fatalf("metric %s: %d rows, want %d", cv.Name, len(cv.Values), len(events)+1)
		}
	}
	if got := curves[0].Values[0]; got != 1 {
		t.Fatalf("intact lcc = %v, want 1", got)
	}
	// Failing nodes 5 and 6 of a 12-line leaves components {0..4}, {7..11}.
	if got := curves[0].Values[2]; got != 5.0/12.0 {
		t.Fatalf("lcc after two fails = %v, want %v", got, 5.0/12.0)
	}
	// Repairing node 5 reattaches 0..5 (edge 5-6 still dead with 6 failed).
	if got := curves[0].Values[3]; got != 6.0/12.0 {
		t.Fatalf("lcc after repair = %v, want %v", got, 6.0/12.0)
	}
}

// TestTimelineEpochEdgeCases walks the epoch boundaries on a small line
// graph where every expected LCC size is computable by hand.
func TestTimelineEpochEdgeCases(t *testing.T) {
	g := lineGraph(t, 8) // nodes 0-7, edges i: (i, i+1)
	c := g.Freeze()
	run := func(events []TimelineEvent, mode TimelineMode) []float64 {
		t.Helper()
		curves, err := RunTimeline(c, events, nil, mode, 1)
		if err != nil {
			t.Fatal(err)
		}
		return curves[0].Values
	}
	frac := func(sizes ...int) []float64 {
		out := make([]float64, len(sizes))
		for i, s := range sizes {
			out[i] = float64(s) / 8.0
		}
		return out
	}
	cases := []struct {
		name   string
		events []TimelineEvent
		want   []float64
	}{
		{"empty timeline", nil, frac(8)},
		{"repair never-failed node", []TimelineEvent{
			{Op: OpRepairNode, ID: 3},
		}, frac(8, 8)},
		{"duplicate fail same edge", []TimelineEvent{
			{Op: OpFailEdge, ID: 3}, // splits into {0..3}, {4..7}
			{Op: OpFailEdge, ID: 3}, // no-op
			{Op: OpRepairEdge, ID: 3},
		}, frac(8, 4, 4, 8)},
		{"repair then fail adjacent", []TimelineEvent{
			{Op: OpFailNode, ID: 4},       // {0..3} best
			{Op: OpRepairNode, ID: 4},     // whole line back
			{Op: OpFailNode, ID: 4},       // single-event epochs on both sides
			{Op: OpFailNode, ID: 1},       // {2,3} and {5,6,7}
			{Op: OpRepairNode, ID: 1},     // {0..3}
			{Op: OpRepairNode, ID: 4},     // whole line
			{Op: OpFailEdge, ID: 0},       // {1..7}
			{Op: OpRepairEdge, ID: 0},
		}, frac(8, 4, 8, 4, 3, 4, 8, 7, 8)},
		{"repair node with failed incident edge", []TimelineEvent{
			{Op: OpFailEdge, ID: 3},
			{Op: OpFailNode, ID: 3},   // {4..7}
			{Op: OpRepairNode, ID: 3}, // edge 3 still down: {0..3}, {4..7}
			{Op: OpRepairEdge, ID: 3},
		}, frac(8, 4, 4, 4, 8)},
		{"fail everything then repair everything", func() []TimelineEvent {
			var evs []TimelineEvent
			for v := 0; v < 8; v++ {
				evs = append(evs, TimelineEvent{Op: OpFailNode, ID: v})
			}
			for v := 7; v >= 0; v-- {
				evs = append(evs, TimelineEvent{Op: OpRepairNode, ID: v})
			}
			return evs
		}(), frac(8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6, 7, 8)},
	}
	for _, tc := range cases {
		for _, mode := range []TimelineMode{TimelineEpoch, TimelineMasked} {
			got := run(tc.events, mode)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("%s (%s): got %v, want %v", tc.name, mode, got, tc.want)
			}
		}
	}
}

// TestTimelineRepeatDeterminism replays the same repeat-style schedule
// (the event list concatenated with itself) twice and pins the two
// trajectories byte-identical — the determinism contract behind the
// scenario layer's `repeat` field.
func TestTimelineRepeatDeterminism(t *testing.T) {
	g := parityModels(t)["ba/seed=1"]
	c := g.Freeze()
	base := timelineSchedule(g, 13, true)
	doubled := append(append([]TimelineEvent{}, base...), base...)
	first, err := RunTimeline(c, doubled, nil, TimelineEpoch, 1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunTimeline(c, doubled, nil, TimelineEpoch, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("repeat schedule replayed twice diverged")
	}
	masked, err := RunTimeline(c, doubled, nil, TimelineMasked, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, masked) {
		t.Fatal("repeat schedule: epoch diverged from masked")
	}
}

// TestTimelineValidation covers the ErrBadParam surface.
func TestTimelineValidation(t *testing.T) {
	g := lineGraph(t, 4)
	c := g.Freeze()
	cases := []struct {
		name    string
		events  []TimelineEvent
		metrics []string
		mode    TimelineMode
	}{
		{"node id out of range", []TimelineEvent{{Op: OpFailNode, ID: 4}}, nil, TimelineAuto},
		{"negative node id", []TimelineEvent{{Op: OpRepairNode, ID: -1}}, nil, TimelineAuto},
		{"edge id out of range", []TimelineEvent{{Op: OpFailEdge, ID: 3}}, nil, TimelineAuto},
		{"unknown op", []TimelineEvent{{Op: TimelineOp(99), ID: 0}}, nil, TimelineAuto},
		{"edge events with non-lcc metrics", []TimelineEvent{{Op: OpFailEdge, ID: 0}}, []string{"lcc", "mean-degree"}, TimelineAuto},
		{"epoch with non-lcc metrics", []TimelineEvent{{Op: OpFailNode, ID: 0}}, []string{"mean-degree"}, TimelineEpoch},
		{"unknown mode", []TimelineEvent{{Op: OpFailNode, ID: 0}}, nil, TimelineMode(99)},
	}
	for _, tc := range cases {
		if _, err := RunTimeline(c, tc.events, tc.metrics, tc.mode, 1); !errors.Is(err, errs.ErrBadParam) {
			t.Fatalf("%s: err = %v, want ErrBadParam", tc.name, err)
		}
	}
	empty := graph.New(0)
	if _, err := RunTimeline(empty.Freeze(), nil, nil, TimelineAuto, 1); !errors.Is(err, errs.ErrBadParam) {
		t.Fatal("empty graph accepted")
	}
}

// TestTimelineCancel pins cancellation wrapping on both paths.
func TestTimelineCancel(t *testing.T) {
	g := parityModels(t)["ba/seed=1"]
	c := g.Freeze()
	events := timelineSchedule(g, 5, true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []TimelineMode{TimelineEpoch, TimelineMasked} {
		if _, err := RunTimelineContext(ctx, c, events, nil, mode, 1); !errors.Is(err, errs.ErrCanceled) {
			t.Fatalf("%s: err = %v, want ErrCanceled", mode, err)
		}
	}
}

// TestTimelineModeRoundTrip pins the mode and op name vocabulary.
func TestTimelineModeRoundTrip(t *testing.T) {
	for _, name := range []string{"auto", "masked", "epoch"} {
		m, err := ParseTimelineMode(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != name {
			t.Fatalf("mode %q round-tripped to %q", name, m.String())
		}
	}
	if m, err := ParseTimelineMode(""); err != nil || m != TimelineAuto {
		t.Fatalf("empty mode: %v, %v", m, err)
	}
	if _, err := ParseTimelineMode("bogus"); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("bogus mode: %v", err)
	}
	ops := map[TimelineOp]string{
		OpFailNode: "fail-node", OpFailEdge: "fail-edge",
		OpRepairNode: "repair-node", OpRepairEdge: "repair-edge",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Fatalf("op %d named %q, want %q", op, op.String(), want)
		}
	}
}

// TestValidateFracs pins the shared fraction check: NaN must be
// rejected explicitly — it slips through a bare `f < 0 || f > 1`.
func TestValidateFracs(t *testing.T) {
	if err := ValidateFracs([]float64{0, 0.5, 1}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]float64{
		{math.NaN()},
		{0.5, math.NaN(), 0.9},
		{-0.01},
		{1.01},
		{math.Inf(1)},
	} {
		if err := ValidateFracs(bad); !errors.Is(err, errs.ErrBadParam) {
			t.Fatalf("fracs %v: err = %v, want ErrBadParam", bad, err)
		}
	}
	g := lineGraph(t, 4)
	spec := SweepSpec{Fracs: []float64{0, math.NaN()}}
	if _, err := RunSweep(g, spec, 1); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("sweep with NaN frac: err = %v, want ErrBadParam", err)
	}
}
