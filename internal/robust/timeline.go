package robust

import (
	"context"

	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/metricreg"
)

// Timeline engine: the fully-dynamic generalization of the reverse
// union-find sweep. A removal schedule only ever destroys connectivity,
// so one backwards pass replays it; a failure/repair timeline also
// re-inserts, which plain union-find cannot undo. The engine therefore
// splits the timeline at direction switches into monotone epochs — a
// maximal run of fail events, or a maximal run of repair events — and
// pays one O((n+m) α) disjoint-set rebuild per epoch:
//
//   - A repair epoch is pure insertion, union-find's native direction:
//     rebuild the forest at the epoch's entry state, then union each
//     repaired item forward, recording the largest component after each
//     event.
//   - A fail epoch is replayed in reverse, exactly like the sweep
//     engine: rebuild the forest at the epoch's *exit* state, re-add
//     the failed items backwards recording sizes, then restore the exit
//     masks.
//
// An entire outage-and-recovery trajectory of E epochs costs
// O(E·(n+m)α + events) instead of one full masked traversal per event —
// TestTimelineParity pins it bit-identical to that per-event masked
// reference path, and BenchmarkTimelineEpochVsRecompute measures the
// gap.

// TimelineOp is one connectivity event kind of a timeline.
type TimelineOp int

// Timeline event kinds. Failing an already-failed item and repairing a
// present one are no-ops: the state is unchanged and the recorded
// metric row repeats the previous value.
const (
	// OpFailNode removes a node (and implicitly every incident edge).
	OpFailNode TimelineOp = iota
	// OpFailEdge removes a single edge; its endpoints stay present.
	OpFailEdge
	// OpRepairNode restores a failed node. Incident edges come back
	// live unless individually failed or attached to a failed neighbor.
	OpRepairNode
	// OpRepairEdge restores a failed edge. It carries connectivity only
	// while both endpoints are present.
	OpRepairEdge
)

// String names the op with the scenario-spec event vocabulary.
func (op TimelineOp) String() string {
	switch op {
	case OpFailNode:
		return "fail-node"
	case OpFailEdge:
		return "fail-edge"
	case OpRepairNode:
		return "repair-node"
	case OpRepairEdge:
		return "repair-edge"
	default:
		return "unknown"
	}
}

// isRemoval reports whether the op destroys connectivity (a fail) as
// opposed to restoring it (a repair) — the epoch-splitting direction.
func (op TimelineOp) isRemoval() bool { return op == OpFailNode || op == OpFailEdge }

// TimelineEvent is one connectivity event: an op applied to a node or
// edge id (per the op's target kind).
type TimelineEvent struct {
	Op TimelineOp
	ID int
}

// TimelineMode selects the timeline engine's evaluation path.
type TimelineMode int

// Evaluation paths.
const (
	// TimelineAuto uses the epoch-based engine when the metric set is
	// exactly {"lcc"} and the masked path otherwise.
	TimelineAuto TimelineMode = iota
	// TimelineMasked re-evaluates every metric from scratch after each
	// event — one masked traversal per metric per event. The reference
	// path the epoch engine is pinned against.
	TimelineMasked
	// TimelineEpoch forces the epoch-based engine; only the "lcc"
	// metric supports it.
	TimelineEpoch
)

// String names the mode.
func (m TimelineMode) String() string {
	switch m {
	case TimelineMasked:
		return "masked"
	case TimelineEpoch:
		return "epoch"
	default:
		return "auto"
	}
}

// ParseTimelineMode maps a mode name ("auto", "masked", "epoch") to its
// TimelineMode, wrapping errs.ErrBadParam for unknown names.
func ParseTimelineMode(name string) (TimelineMode, error) {
	switch name {
	case "", "auto":
		return TimelineAuto, nil
	case "masked":
		return TimelineMasked, nil
	case "epoch":
		return TimelineEpoch, nil
	default:
		return 0, errs.BadParamf("robust: unknown timeline mode %q", name)
	}
}

// RunTimeline evaluates the timeline with a background context; see
// RunTimelineContext.
func RunTimeline(c *graph.CSR, events []TimelineEvent, metricNames []string, mode TimelineMode, seed int64) ([]MetricCurve, error) {
	return RunTimelineContext(context.Background(), c, events, metricNames, mode, seed)
}

// RunTimelineContext traces a metric set along a failure/repair
// timeline: curves[mi].Values[0] is metric mi on the intact snapshot
// and Values[k] the value after applying events[:k], so each curve has
// len(events)+1 rows. The metric set defaults to {"lcc"}; timelines
// containing edge events support only {"lcc"} (masked accumulators
// evaluate node masks), node-only timelines any CapMasked set. The two
// evaluation paths are bit-identical (TestTimelineParity); both are
// deterministic, so one timeline replayed twice produces byte-identical
// trajectories. Out-of-range ids and invalid modes wrap
// errs.ErrBadParam; cancellation wraps errs.ErrCanceled.
func RunTimelineContext(ctx context.Context, c *graph.CSR, events []TimelineEvent, metricNames []string, mode TimelineMode, seed int64) ([]MetricCurve, error) {
	n, m := c.NumNodes(), c.NumEdges()
	if n == 0 {
		return nil, errs.BadParamf("robust: timeline over empty graph")
	}
	hasEdgeEvents := false
	for i, ev := range events {
		switch ev.Op {
		case OpFailNode, OpRepairNode:
			if ev.ID < 0 || ev.ID >= n {
				return nil, errs.BadParamf("robust: timeline event %d: node %d out of [0,%d)", i, ev.ID, n)
			}
		case OpFailEdge, OpRepairEdge:
			if ev.ID < 0 || ev.ID >= m {
				return nil, errs.BadParamf("robust: timeline event %d: edge %d out of [0,%d)", i, ev.ID, m)
			}
			hasEdgeEvents = true
		default:
			return nil, errs.BadParamf("robust: timeline event %d: unknown op %d", i, ev.Op)
		}
	}
	if len(metricNames) == 0 {
		metricNames = []string{"lcc"}
	}
	onlyLCC := len(metricNames) == 1 && metricNames[0] == "lcc"
	if hasEdgeEvents && !onlyLCC {
		return nil, errs.BadParamf("robust: timelines with edge events trace only the \"lcc\" metric, got %v", metricNames)
	}
	var epoch bool
	switch mode {
	case TimelineAuto:
		epoch = onlyLCC
	case TimelineEpoch:
		if !onlyLCC {
			return nil, errs.BadParamf("robust: epoch path traces only the \"lcc\" metric, got %v", metricNames)
		}
		epoch = true
	case TimelineMasked:
	default:
		return nil, errs.BadParamf("robust: unknown timeline mode %d", mode)
	}

	out := make([]MetricCurve, len(metricNames))
	for mi, name := range metricNames {
		out[mi] = MetricCurve{Name: name, Values: make([]float64, len(events)+1)}
	}
	if epoch {
		sizes, err := epochLCCTrajectory(ctx, c, events)
		if err != nil {
			return nil, err
		}
		for k, sz := range sizes {
			out[0].Values[k] = float64(sz) / float64(n)
		}
		return out, nil
	}
	if err := maskedTimeline(ctx, c, events, metricNames, onlyLCC, seed, out); err != nil {
		return nil, err
	}
	return out, nil
}

// epochLCCTrajectory is the epoch-based engine: sizes[k] = largest
// component size after applying events[:k], with one disjoint-set
// rebuild per monotone epoch. Events are grouped into epochs purely by
// direction (fail vs repair); no-op events stay inside their epoch and
// repeat the neighboring size.
func epochLCCTrajectory(ctx context.Context, c *graph.CSR, events []TimelineEvent) ([]int, error) {
	n := c.NumNodes()
	sizes := make([]int, len(events)+1)
	nodeFailed := make([]bool, n)
	edgeFailed := make([]bool, c.NumEdges())
	endU, endV := edgeEndpoints(c)
	d := newDSU(n)

	// rebuild re-seeds the forest with the current live state: every
	// present node a singleton, every live edge unioned. After it,
	// d.best is the LCC of the current masks.
	rebuild := func() {
		d.reset()
		for v := 0; v < n; v++ {
			if !nodeFailed[v] {
				d.add(v)
			}
		}
		for e := range edgeFailed {
			if !edgeFailed[e] && !nodeFailed[endU[e]] && !nodeFailed[endV[e]] {
				d.union(endU[e], endV[e])
			}
		}
	}
	// unapply restores one failed item and unions it back in — shared
	// by the repair epochs (forward) and the fail epochs (reverse).
	unapply := func(ev TimelineEvent) {
		switch ev.Op {
		case OpFailNode, OpRepairNode:
			v := ev.ID
			nodeFailed[v] = false
			d.add(v)
			c.Neighbors(v, func(u, e int, _ float64) {
				if !nodeFailed[u] && !edgeFailed[e] {
					d.union(int32(v), int32(u))
				}
			})
		case OpFailEdge, OpRepairEdge:
			e := ev.ID
			edgeFailed[e] = false
			if !nodeFailed[endU[e]] && !nodeFailed[endV[e]] {
				d.union(endU[e], endV[e])
			}
		}
	}

	rebuild()
	sizes[0] = d.best
	// eff[k-i] records, per epoch, whether event k changed state when
	// applied forward — the reverse replay must skip forward no-ops.
	var eff []bool
	for i := 0; i < len(events); {
		if err := errs.Ctx(ctx); err != nil {
			return nil, err
		}
		removal := events[i].Op.isRemoval()
		j := i
		for j < len(events) && events[j].Op.isRemoval() == removal {
			j++
		}
		if removal {
			// Forward-apply the epoch's masks, recording which events
			// actually changed state, then rebuild at the exit state and
			// replay backwards: d.best before un-applying event k is the
			// LCC after it.
			eff = eff[:0]
			for k := i; k < j; k++ {
				ev := events[k]
				if ev.Op == OpFailNode {
					eff = append(eff, !nodeFailed[ev.ID])
					nodeFailed[ev.ID] = true
				} else {
					eff = append(eff, !edgeFailed[ev.ID])
					edgeFailed[ev.ID] = true
				}
			}
			rebuild()
			for k := j - 1; k >= i; k-- {
				sizes[k+1] = d.best
				if eff[k-i] {
					unapply(events[k])
				}
			}
			// The reverse replay restored the entry masks; put the epoch's
			// exit state back (the forest stays stale until the next
			// rebuild).
			for k := i; k < j; k++ {
				if events[k].Op == OpFailNode {
					nodeFailed[events[k].ID] = true
				} else {
					edgeFailed[events[k].ID] = true
				}
			}
		} else {
			// Repairs are insertions — union-find's native direction:
			// rebuild at the entry state and walk forward.
			rebuild()
			for k := i; k < j; k++ {
				ev := events[k]
				var failed bool
				if ev.Op == OpRepairEdge {
					failed = edgeFailed[ev.ID]
				} else {
					failed = nodeFailed[ev.ID]
				}
				if failed {
					unapply(ev)
				}
				sizes[k+1] = d.best
			}
		}
		i = j
	}
	return sizes, nil
}

// maskedTimeline is the reference path: apply each event to the masks
// and re-evaluate every metric from scratch. With edge events the set
// is {"lcc"} via the combined-mask kernel; node-only timelines reuse
// one CapMasked accumulator per metric across all events, exactly like
// the sweep engine.
func maskedTimeline(ctx context.Context, c *graph.CSR, events []TimelineEvent, metricNames []string, onlyLCC bool, seed int64, out []MetricCurve) error {
	n := c.NumNodes()
	nodeFailed := make([]bool, n)
	edgeFailed := make([]bool, c.NumEdges())
	ws := graph.GetWorkspace(n)
	defer ws.Release()

	var accs []metricreg.MaskedAccumulator
	if !onlyLCC {
		mset, err := metricreg.ResolveMasked(metricNames, seed)
		if err != nil {
			return err
		}
		if accs, err = mset.NewAccumulators(); err != nil {
			return err
		}
	}
	evaluate := func(row int) {
		if onlyLCC {
			out[0].Values[row] = float64(c.LargestComponentMixedMasked(ws, nodeFailed, edgeFailed)) / float64(n)
			return
		}
		for mi, acc := range accs {
			out[mi].Values[row] = acc.EvaluateMasked(ws, c, nodeFailed)
		}
	}
	evaluate(0)
	for k, ev := range events {
		if err := errs.Ctx(ctx); err != nil {
			return err
		}
		switch ev.Op {
		case OpFailNode:
			nodeFailed[ev.ID] = true
		case OpFailEdge:
			edgeFailed[ev.ID] = true
		case OpRepairNode:
			nodeFailed[ev.ID] = false
		case OpRepairEdge:
			edgeFailed[ev.ID] = false
		}
		evaluate(k + 1)
	}
	return nil
}
