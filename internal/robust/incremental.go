package robust

import (
	"repro/internal/graph"
)

// Reverse (offline) union-find: the incremental evaluation path of the
// sweep engine. A removal schedule destroys connectivity one node or
// edge at a time; deletions are hard for union-find but insertions are
// trivial, so the trajectory is computed backwards — start from the
// fully-attacked topology, re-add scheduled items in reverse order, and
// record the largest component after each re-addition. One pass costs
// O((n+m) α(n)) for the *entire* trajectory, versus one masked BFS
// (O(n+m)) per removal fraction on the masked path.
//
// Sizes are exact integers, so dividing by the node count yields
// bit-for-bit the same float64 curve as the masked path — pinned by
// TestIncrementalParity.

// dsu is a union-by-size disjoint-set forest with path halving over
// int32 ids, tracking the largest set size seen so far (which only
// grows as items are re-added — exactly the reverse-LCC invariant).
type dsu struct {
	parent []int32
	size   []int32
	best   int
}

func newDSU(n int) *dsu {
	return &dsu{parent: make([]int32, n), size: make([]int32, n)}
}

// reset forgets every set so the forest can be rebuilt over a new base
// state — the per-epoch rebuild of the timeline engine. Stale parent
// entries are left in place: add re-initializes each node that is part
// of the new state, and find/union are only ever called on added nodes.
func (d *dsu) reset() { d.best = 0 }

// add activates v as a singleton set.
func (d *dsu) add(v int) {
	d.parent[v] = int32(v)
	d.size[v] = 1
	if d.best < 1 {
		d.best = 1
	}
}

func (d *dsu) find(v int32) int32 {
	for d.parent[v] != v {
		d.parent[v] = d.parent[d.parent[v]] // path halving
		v = d.parent[v]
	}
	return v
}

// union merges the sets of u and v, updating best.
func (d *dsu) union(u, v int32) {
	ru, rv := d.find(u), d.find(v)
	if ru == rv {
		return
	}
	if d.size[ru] < d.size[rv] {
		ru, rv = rv, ru
	}
	d.parent[rv] = ru
	d.size[ru] += d.size[rv]
	if int(d.size[ru]) > d.best {
		d.best = int(d.size[ru])
	}
}

// lccNodeTrajectory returns sizes[k] = largest-component size after
// removing schedule[:k] from the snapshot, for every prefix k in
// [0, len(schedule)]. Nodes absent from the schedule are present
// throughout.
func lccNodeTrajectory(c *graph.CSR, schedule []int) []int {
	n := c.NumNodes()
	sizes := make([]int, len(schedule)+1)
	present := make([]bool, n)
	scheduled := make([]bool, n)
	for _, v := range schedule {
		scheduled[v] = true
	}
	d := newDSU(n)
	for v := 0; v < n; v++ {
		if !scheduled[v] {
			present[v] = true
			d.add(v)
		}
	}
	for v := 0; v < n; v++ {
		if !present[v] {
			continue
		}
		c.Neighbors(v, func(u, _ int, _ float64) {
			if u < v && present[u] {
				d.union(int32(v), int32(u))
			}
		})
	}
	sizes[len(schedule)] = d.best
	for i := len(schedule) - 1; i >= 0; i-- {
		v := schedule[i]
		present[v] = true
		d.add(v)
		c.Neighbors(v, func(u, _ int, _ float64) {
			if present[u] {
				d.union(int32(v), int32(u))
			}
		})
		sizes[i] = d.best
	}
	return sizes
}

// lccEdgeTrajectory returns sizes[k] = largest-component size after
// removing the edges schedule[:k] from the snapshot (all nodes stay
// present), for every prefix k in [0, len(schedule)]. Edges absent from
// the schedule are present throughout.
func lccEdgeTrajectory(c *graph.CSR, schedule []int) []int {
	n, m := c.NumNodes(), c.NumEdges()
	sizes := make([]int, len(schedule)+1)
	scheduledEdge := make([]bool, m)
	for _, e := range schedule {
		scheduledEdge[e] = true
	}
	endU, endV := edgeEndpoints(c)
	d := newDSU(n)
	for v := 0; v < n; v++ {
		d.add(v)
	}
	for e := 0; e < m; e++ {
		if !scheduledEdge[e] {
			d.union(endU[e], endV[e])
		}
	}
	sizes[len(schedule)] = d.best
	for i := len(schedule) - 1; i >= 0; i-- {
		e := schedule[i]
		d.union(endU[e], endV[e])
		sizes[i] = d.best
	}
	return sizes
}

// edgeEndpoints recovers each edge's endpoints from the half-edge
// arrays: every edge id appears once per direction, so the u < v visit
// selects one canonical orientation.
func edgeEndpoints(c *graph.CSR) (endU, endV []int32) {
	m := c.NumEdges()
	endU = make([]int32, m)
	endV = make([]int32, m)
	for v := 0; v < c.NumNodes(); v++ {
		c.Neighbors(v, func(u, e int, _ float64) {
			if u < v {
				endU[e], endV[e] = int32(v), int32(u)
			}
		})
	}
	return endU, endV
}
