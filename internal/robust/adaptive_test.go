package robust

import (
	"context"
	"testing"

	"repro/internal/attackreg"
	"repro/internal/gen"
)

func TestAdaptiveAttackAtLeastAsDeadly(t *testing.T) {
	// On a scale-free graph the adaptive degree attack is at least as
	// destructive as the static one at every removal fraction.
	g, err := gen.BarabasiAlbert(500, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	fracs := []float64{0.05, 0.1, 0.2, 0.3}
	static, err := Sweep(g, DegreeAttack, fracs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Sweep(g, AdaptiveDegreeAttack, fracs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fracs {
		if adaptive[i].LCCFrac > static[i].LCCFrac+0.05 {
			t.Fatalf("frac %v: adaptive %v notably weaker than static %v",
				fracs[i], adaptive[i].LCCFrac, static[i].LCCFrac)
		}
	}
}

func TestAdaptiveAttackOrderIsPermutation(t *testing.T) {
	g, err := gen.BarabasiAlbert(100, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := attackreg.Lookup(AdaptiveDegreeAttack.AttackName())
	if err != nil {
		t.Fatal(err)
	}
	order, err := atk.Schedule(context.Background(), g.Clone(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 100 {
		t.Fatalf("order length %d", len(order))
	}
	seen := make([]bool, 100)
	for _, v := range order {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatal("removal order is not a permutation")
		}
		seen[v] = true
	}
	// First removal is the max-degree hub.
	deg := g.Degrees()
	for _, d := range deg {
		if d > deg[order[0]] {
			t.Fatal("adaptive attack did not start at the max-degree hub")
		}
	}
}

func TestAdaptiveStrategyString(t *testing.T) {
	if AdaptiveDegreeAttack.String() != "adaptive-degree-attack" {
		t.Fatal("bad strategy string")
	}
}
