package access

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/rng"
)

// InstanceConfig parameterizes random instance generation for the E2/E3
// experiments.
type InstanceConfig struct {
	N       int       // number of customers
	Seed    int64     //
	Region  geom.Rect // zero value = unit square
	Catalog Catalog   // nil = DefaultCatalog
	// Demand distribution: bounded Pareto on [DemandMin, DemandMax] with
	// shape DemandShape. DemandMax <= DemandMin gives constant DemandMin.
	DemandMin   float64
	DemandMax   float64
	DemandShape float64
	// Clusters > 0 scatters customers around that many Gaussian metro
	// clusters instead of uniformly (paper §2.1: "most customers reside
	// in the big cities").
	Clusters     int
	ClusterSigma float64
	RootAtCenter bool // root at region center; otherwise random corner bias
}

// RandomInstance draws an instance per the configuration.
func RandomInstance(cfg InstanceConfig) (*Instance, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("access: instance needs N >= 1")
	}
	region := cfg.Region
	if region == (geom.Rect{}) {
		region = geom.UnitSquare
	}
	cat := cfg.Catalog
	if cat == nil {
		cat = DefaultCatalog()
	}
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	dmin := cfg.DemandMin
	if dmin <= 0 {
		dmin = 1
	}
	r := rng.New(cfg.Seed)

	var pts []geom.Point
	if cfg.Clusters > 0 {
		sigma := cfg.ClusterSigma
		if sigma <= 0 {
			sigma = 0.05
		}
		centers := region.RandomPoints(r, cfg.Clusters)
		// Cluster sizes follow a Zipf law over cluster rank.
		z := rng.NewZipf(cfg.Clusters, 1.0)
		counts := make([]int, cfg.Clusters)
		for i := 0; i < cfg.N; i++ {
			counts[z.Sample(r)-1]++
		}
		for ci, cnt := range counts {
			pts = append(pts, region.GaussianCluster(r, centers[ci], sigma, cnt)...)
		}
	} else {
		pts = region.RandomPoints(r, cfg.N)
	}

	in := &Instance{Root: region.Center(), Catalog: cat}
	if !cfg.RootAtCenter && cfg.Clusters == 0 {
		in.Root = region.RandomPoint(r)
	}
	for _, p := range pts {
		d := dmin
		if cfg.DemandMax > dmin {
			shape := cfg.DemandShape
			if shape <= 0 {
				shape = 1.2
			}
			d = rng.BoundedPareto(r, dmin, cfg.DemandMax, shape)
		}
		in.Customers = append(in.Customers, Customer{Loc: p, Demand: d})
	}
	return in, nil
}
