package access

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/rng"
)

// MMPIncremental solves the instance with the randomized incremental
// cost-distance heuristic in the spirit of Meyerson–Munagala–Plotkin
// (paper reference [24]): customers arrive in random order; each arriving
// customer attaches to the existing network node j minimizing
//
//	installFactor * dist(i, j)  +  usage-cost-to-root(j) * demand_i
//
// i.e. a tradeoff between building new last-mile cable and riding the
// accumulated (cheap, bulk) cables toward the root. The first term is the
// incremental construction cost, the second the marginal routing cost —
// exactly the cost-distance metric. After the arrival pass, flows are
// aggregated bottom-up and every edge gets the cheapest adequate cable
// configuration.
//
// The output is a spanning tree of root + customers by construction.
func MMPIncremental(in *Instance, seed int64) (*Network, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(seed)
	g := newNetworkSkeleton(in)
	n := len(in.Customers)

	// usageToRoot[v] is the per-unit-flow cost of carrying demand from v
	// to the root along current tree edges, priced at the *cheapest* per
	// unit usage rate (δ_K) — the incremental algorithm's optimistic
	// estimate of bulk transport cost once cables are upgraded.
	deltaBulk := in.Catalog[len(in.Catalog)-1].Usage
	sigmaThin := in.Catalog[0].Install
	usageToRoot := make([]float64, n+1)
	attached := make([]int, 0, n+1)
	attached = append(attached, 0)

	order := rng.Shuffle(r, n)
	for _, ci := range order {
		v := ci + 1 // graph id of customer ci
		loc := in.Customers[ci].Loc
		dem := in.Customers[ci].Demand
		bestJ, bestCost := -1, math.Inf(1)
		for _, j := range attached {
			nj := g.Node(j)
			d := loc.Dist(geom.Point{X: nj.X, Y: nj.Y})
			cost := sigmaThin*d + (usageToRoot[j]+deltaBulk*d)*dem
			if cost < bestCost {
				bestJ, bestCost = j, cost
			}
		}
		nj := g.Node(bestJ)
		d := loc.Dist(geom.Point{X: nj.X, Y: nj.Y})
		g.AddEdge(graph.Edge{U: bestJ, V: v, Weight: d, Cable: -1})
		usageToRoot[v] = usageToRoot[bestJ] + deltaBulk*d
		attached = append(attached, v)
	}
	return finishTree(in, g)
}

// SampleAndAugment solves the instance with the stage-based randomized
// sample-and-augment scheme (the constant-factor single-sink buy-at-bulk
// template): level ℓ keeps each surviving customer independently with
// probability p, promoted survivors become "hubs" of the next level;
// every non-survivor attaches to its nearest survivor (or the root).
// Levels correspond to cable tiers: the deeper the level, the fatter the
// aggregated flow and the thicker the optimal cable. The top level
// connects hubs plus the root by a Euclidean MST.
//
// Output is a spanning tree of root + customers.
func SampleAndAugment(in *Instance, seed int64, p float64) (*Network, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("access: sampling probability %v out of (0,1)", p)
	}
	r := rng.New(seed)
	g := newNetworkSkeleton(in)
	n := len(in.Customers)

	level := make([]int, n+1) // 0 for customers initially
	survivors := make([]int, 0, n)
	for v := 1; v <= n; v++ {
		survivors = append(survivors, v)
	}
	levels := len(in.Catalog)
	for l := 1; l < levels && len(survivors) > 1; l++ {
		next := survivors[:0:0]
		for _, v := range survivors {
			if r.Float64() < p {
				next = append(next, v)
				level[v] = l
			}
		}
		if len(next) == 0 {
			// Guarantee progress: promote one uniformly at random.
			keep := survivors[r.Intn(len(survivors))]
			next = append(next, keep)
			level[keep] = l
		}
		// Attach the non-promoted to their nearest promoted hub (or root,
		// whichever is closer).
		pts := make([]geom.Point, len(next))
		for i, v := range next {
			nd := g.Node(v)
			pts[i] = geom.Point{X: nd.X, Y: nd.Y}
		}
		tree := geom.NewKDTree(pts)
		for _, v := range survivors {
			if level[v] >= l {
				continue
			}
			nd := g.Node(v)
			loc := geom.Point{X: nd.X, Y: nd.Y}
			hi, hd := tree.Nearest(loc)
			target := next[hi]
			td := hd
			if rd := loc.Dist(in.Root); rd < td {
				target, td = 0, rd
			}
			g.AddEdge(graph.Edge{U: target, V: v, Weight: td, Cable: -1})
		}
		survivors = next
	}
	// Top level: MST over survivors + root.
	xs := make([]float64, len(survivors)+1)
	ys := make([]float64, len(survivors)+1)
	ids := make([]int, len(survivors)+1)
	xs[0], ys[0], ids[0] = in.Root.X, in.Root.Y, 0
	for i, v := range survivors {
		nd := g.Node(v)
		xs[i+1], ys[i+1] = nd.X, nd.Y
		ids[i+1] = v
	}
	for _, pr := range graph.EuclideanMST(xs, ys) {
		u, v := ids[pr[0]], ids[pr[1]]
		d := math.Hypot(xs[pr[0]]-xs[pr[1]], ys[pr[0]]-ys[pr[1]])
		g.AddEdge(graph.Edge{U: u, V: v, Weight: d, Cable: -1})
	}
	return finishTree(in, g)
}

// SingleCableMST is the naive baseline that ignores economies of scale:
// build the Euclidean MST over root + customers and install only the
// thinnest cable type (in parallel as needed for capacity).
func SingleCableMST(in *Instance) (*Network, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	g := newNetworkSkeleton(in)
	n := g.NumNodes()
	xs := make([]float64, n)
	ys := make([]float64, n)
	for v := 0; v < n; v++ {
		nd := g.Node(v)
		xs[v], ys[v] = nd.X, nd.Y
	}
	for _, pr := range graph.EuclideanMST(xs, ys) {
		d := math.Hypot(xs[pr[0]]-xs[pr[1]], ys[pr[0]]-ys[pr[1]])
		g.AddEdge(graph.Edge{U: pr[0], V: pr[1], Weight: d, Cable: -1})
	}
	if !g.IsTree() {
		return nil, fmt.Errorf("access: MST construction failed")
	}
	// Cost with only cable type 0.
	thinOnly := Catalog{in.Catalog[0]}
	tmp := &Instance{Root: in.Root, Customers: in.Customers, Catalog: thinOnly}
	return finishTree(tmp, g)
}

// DirectStar is the opposite baseline: a dedicated straight cable from
// every customer to the root (no sharing), each with its cheapest
// adequate configuration.
func DirectStar(in *Instance) (*Network, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	g := newNetworkSkeleton(in)
	for i, c := range in.Customers {
		g.AddEdge(graph.Edge{U: 0, V: i + 1, Weight: c.Loc.Dist(in.Root), Cable: -1})
	}
	return finishTree(in, g)
}

// GreedyConcentrator is the classic local-access heuristic (paper
// references [6,18]): place k concentrators by weighted k-means over
// customer locations, home each customer onto its nearest concentrator,
// and connect concentrators to the root by an MST. Concentrator nodes are
// appended to the graph after the customers.
func GreedyConcentrator(in *Instance, k int, seed int64) (*Network, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := len(in.Customers)
	if k < 1 {
		return nil, fmt.Errorf("access: need k >= 1 concentrators")
	}
	if k > n {
		k = n
	}
	centers := KMeans(customerPoints(in), customerWeights(in), k, seed, 30)
	g := newNetworkSkeleton(in)
	concIDs := make([]int, k)
	for i, c := range centers {
		concIDs[i] = g.AddNode(graph.Node{Kind: graph.KindConc, X: c.X, Y: c.Y})
	}
	tree := geom.NewKDTree(centers)
	for i, c := range in.Customers {
		hi, hd := tree.Nearest(c.Loc)
		g.AddEdge(graph.Edge{U: concIDs[hi], V: i + 1, Weight: hd, Cable: -1})
	}
	// Root + concentrators MST.
	xs := make([]float64, k+1)
	ys := make([]float64, k+1)
	ids := make([]int, k+1)
	xs[0], ys[0], ids[0] = in.Root.X, in.Root.Y, 0
	for i, c := range centers {
		xs[i+1], ys[i+1], ids[i+1] = c.X, c.Y, concIDs[i]
	}
	for _, pr := range graph.EuclideanMST(xs, ys) {
		d := math.Hypot(xs[pr[0]]-xs[pr[1]], ys[pr[0]]-ys[pr[1]])
		g.AddEdge(graph.Edge{U: ids[pr[0]], V: ids[pr[1]], Weight: d, Cable: -1})
	}
	return finishTree(in, g)
}

// KMeans is weighted Lloyd's algorithm over points with the given
// weights; it returns k centers. Deterministic given the seed. Exposed
// for the ISP designer's POP placement.
func KMeans(pts []geom.Point, weights []float64, k int, seed int64, iters int) []geom.Point {
	if len(pts) == 0 || k < 1 {
		return nil
	}
	if k > len(pts) {
		k = len(pts)
	}
	r := rng.New(seed)
	// k-means++ style seeding: first uniform, rest distance-weighted.
	centers := make([]geom.Point, 0, k)
	centers = append(centers, pts[r.Intn(len(pts))])
	d2 := make([]float64, len(pts))
	for len(centers) < k {
		total := 0.0
		for i, p := range pts {
			best := math.Inf(1)
			for _, c := range centers {
				if d := p.Dist2(c); d < best {
					best = d
				}
			}
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			d2[i] = best * w
			total += d2[i]
		}
		if total == 0 {
			centers = append(centers, pts[r.Intn(len(pts))])
			continue
		}
		u := r.Float64() * total
		acc := 0.0
		pick := len(pts) - 1
		for i, d := range d2 {
			acc += d
			if u < acc {
				pick = i
				break
			}
		}
		centers = append(centers, pts[pick])
	}
	assign := make([]int, len(pts))
	for it := 0; it < iters; it++ {
		changed := false
		for i, p := range pts {
			best, bestD := 0, math.Inf(1)
			for ci, c := range centers {
				if d := p.Dist2(c); d < bestD {
					best, bestD = ci, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		var sx, sy, sw []float64
		sx = make([]float64, k)
		sy = make([]float64, k)
		sw = make([]float64, k)
		for i, p := range pts {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			sx[assign[i]] += p.X * w
			sy[assign[i]] += p.Y * w
			sw[assign[i]] += w
		}
		for ci := range centers {
			if sw[ci] > 0 {
				centers[ci] = geom.Point{X: sx[ci] / sw[ci], Y: sy[ci] / sw[ci]}
			}
		}
		if !changed {
			break
		}
	}
	return centers
}

func customerPoints(in *Instance) []geom.Point {
	pts := make([]geom.Point, len(in.Customers))
	for i, c := range in.Customers {
		pts[i] = c.Loc
	}
	return pts
}

func customerWeights(in *Instance) []float64 {
	ws := make([]float64, len(in.Customers))
	for i, c := range in.Customers {
		ws[i] = c.Demand
	}
	return ws
}

// AugmentTwoEdgeConnected adds straight-line edges to a solved tree
// network so it becomes 2-edge-connected — the paper's footnote 7: "adding
// a path redundancy requirement breaks the tree structure of the optimal
// solution." Leaves are paired in DFS order (the classical tree
// augmentation that 2-edge-connects a tree with ⌈L/2⌉ edges), then any
// remaining bridges are covered greedily. Flows and cable assignments of
// existing edges are kept; each new edge gets the thinnest cable. It
// returns the number of edges added.
func AugmentTwoEdgeConnected(in *Instance, net *Network) int {
	g := net.Graph
	if g.NumNodes() < 3 {
		return 0
	}
	added := 0
	addEdge := func(u, v int) {
		nu, nv := g.Node(u), g.Node(v)
		d := geom.Point{X: nu.X, Y: nu.Y}.Dist(geom.Point{X: nv.X, Y: nv.Y})
		g.AddEdge(graph.Edge{U: u, V: v, Weight: d, Cable: 0})
		net.Flow = append(net.Flow, 0)
		net.CableKind = append(net.CableKind, 0)
		net.CableCount = append(net.CableCount, 1)
		net.InstallCost += in.Catalog[0].Install * d
		added++
	}
	// DFS-order the leaves.
	var leaves []int
	visited := make([]bool, g.NumNodes())
	stack := []int{0}
	visited[0] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if g.Degree(u) == 1 && u != 0 {
			leaves = append(leaves, u)
		}
		var next []int
		g.Neighbors(u, func(v, _ int) {
			if !visited[v] {
				visited[v] = true
				next = append(next, v)
			}
		})
		sort.Ints(next)
		stack = append(stack, next...)
	}
	half := len(leaves) / 2
	for i := 0; i < half; i++ {
		addEdge(leaves[i], leaves[i+half])
	}
	if len(leaves)%2 == 1 && len(leaves) > 0 {
		addEdge(leaves[len(leaves)-1], 0)
	}
	// Cover remaining bridges: connect one endpoint's subtree leaf-most
	// node back to the root until bridge-free.
	for guard := 0; guard < g.NumNodes(); guard++ {
		bridges := g.BridgeEdges()
		if len(bridges) == 0 {
			break
		}
		e := g.Edge(bridges[0])
		far := e.V
		if far == 0 {
			far = e.U
		}
		addEdge(far, 0)
	}
	return added
}
