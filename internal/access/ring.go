package access

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
)

// RingMetro designs the metro access network under a SONET-style Level-2
// ring technology instead of point-to-point cables — the §2.4 question
// ("how important the careful incorporation of Level-2 technologies and
// economics is") made concrete. Customers are partitioned into rings of
// at most ringSize members by an angular sweep around the core (the
// classic SONET planning heuristic); each ring is a cycle through the
// core node.
//
// The cost model reflects SONET protection: every edge of a ring must be
// provisioned for the ring's entire demand (traffic may traverse either
// direction around the ring after a cut), so each ring edge gets the
// cheapest cable configuration covering the full ring demand.
//
// The output is 2-edge-connected by construction whenever every ring has
// at least two customers — the Level-2 constraint buys survivability but
// breaks the cost-optimal tree shape, the same effect as footnote 7.
func RingMetro(in *Instance, ringSize int) (*Network, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if ringSize < 2 {
		return nil, fmt.Errorf("access: ring size must be >= 2")
	}
	g := newNetworkSkeleton(in)
	n := len(in.Customers)

	// Angular sweep: sort customers by angle around the root, chunk into
	// rings of ringSize.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	angle := func(c Customer) float64 {
		return math.Atan2(c.Loc.Y-in.Root.Y, c.Loc.X-in.Root.X)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return angle(in.Customers[order[a]]) < angle(in.Customers[order[b]])
	})

	net := &Network{Graph: g}
	addEdge := func(u, v int, ringDemand float64) {
		nu, nv := g.Node(u), g.Node(v)
		d := geom.Point{X: nu.X, Y: nu.Y}.Dist(geom.Point{X: nv.X, Y: nv.Y})
		kind, count, _ := in.Catalog.BestCableConfig(ringDemand)
		g.AddEdge(graph.Edge{
			U: u, V: v, Weight: d,
			Capacity: float64(count) * in.Catalog[kind].Capacity,
			Cable:    kind,
		})
		net.Flow = append(net.Flow, ringDemand)
		net.CableKind = append(net.CableKind, kind)
		net.CableCount = append(net.CableCount, count)
		net.InstallCost += float64(count) * in.Catalog[kind].Install * d
		net.UsageCost += in.Catalog[kind].Usage * ringDemand * d
	}

	for start := 0; start < n; start += ringSize {
		end := start + ringSize
		if end > n {
			end = n
		}
		members := order[start:end]
		ringDemand := 0.0
		for _, ci := range members {
			ringDemand += in.Customers[ci].Demand
		}
		// Cycle: root -> members in angular order -> root. A single-member
		// "ring" degenerates to a protected dual link (parallel edges).
		prev := 0
		for _, ci := range members {
			addEdge(prev, ci+1, ringDemand)
			prev = ci + 1
		}
		addEdge(prev, 0, ringDemand)
	}
	return net, nil
}

// RingVsTreeReport compares the ring design against a tree design of the
// same instance: the Level-2 ablation experiment E10 prints these fields.
type RingVsTreeReport struct {
	TreeCost      float64
	RingCost      float64
	CostPremium   float64 // RingCost/TreeCost - 1
	TreeIsTree    bool
	Ring2EdgeConn bool
	TreeMaxDegree int
	RingMaxDegree int
}

// CompareRingVsTree solves the instance both ways (MMP tree and SONET
// rings) and reports the §2.4 tradeoff.
func CompareRingVsTree(in *Instance, seed int64, ringSize int) (*RingVsTreeReport, error) {
	tree, err := MMPIncremental(in, seed)
	if err != nil {
		return nil, err
	}
	ring, err := RingMetro(in, ringSize)
	if err != nil {
		return nil, err
	}
	r := &RingVsTreeReport{
		TreeCost:      tree.TotalCost(),
		RingCost:      ring.TotalCost(),
		TreeIsTree:    tree.Graph.IsTree(),
		Ring2EdgeConn: ring.Graph.IsTwoEdgeConnected(),
		TreeMaxDegree: tree.Graph.MaxDegree(),
		RingMaxDegree: ring.Graph.MaxDegree(),
	}
	if r.TreeCost > 0 {
		r.CostPremium = r.RingCost/r.TreeCost - 1
	}
	return r, nil
}
