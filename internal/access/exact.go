package access

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/graph"
)

// MaxExactCustomers bounds ExactTreeOPT's instance size: the enumeration
// visits (n+1)^(n-1) spanning trees.
const MaxExactCustomers = 7

// ExactTreeOPT computes the exact optimal cost over all spanning trees of
// root + customers (no Steiner points — the same solution class the
// incremental heuristics search), by enumerating every labelled tree via
// Prüfer sequences and pricing each with the optimal cable assignment.
// It returns the optimal cost and the optimal tree as parent ids
// (parent[i] for customer i, with 0 the root; parent[root] is -1).
//
// This is the ground truth the heuristics are validated against in tests
// and in the E3 notes: exponential in n, so n is capped at
// MaxExactCustomers.
func ExactTreeOPT(in *Instance) (float64, []int, error) {
	if err := in.Validate(); err != nil {
		return 0, nil, err
	}
	n := len(in.Customers)
	if n > MaxExactCustomers {
		return 0, nil, fmt.Errorf("access: exact solver capped at %d customers (got %d)", MaxExactCustomers, n)
	}
	m := n + 1 // tree nodes: 0 = root, 1..n = customers
	if m == 1 {
		return 0, []int{-1}, nil
	}
	// Pairwise distances.
	pts := make([]geom.Point, m)
	pts[0] = in.Root
	for i, c := range in.Customers {
		pts[i+1] = c.Loc
	}
	dist := make([][]float64, m)
	for i := range dist {
		dist[i] = make([]float64, m)
		for j := range dist[i] {
			dist[i][j] = pts[i].Dist(pts[j])
		}
	}
	demand := make([]float64, m)
	for i, c := range in.Customers {
		demand[i+1] = c.Demand
	}

	best := math.Inf(1)
	var bestParent []int

	if m == 2 {
		_, _, unit := in.Catalog.BestCableConfig(demand[1])
		return unit * dist[0][1], []int{-1, 0}, nil
	}

	// Enumerate Prüfer sequences of length m-2 over alphabet [0, m).
	seq := make([]int, m-2)
	adj := make([][]int, m)
	degree := make([]int, m)
	parent := make([]int, m)
	order := make([]int, 0, m)
	var evaluate func()
	evaluate = func() {
		// Decode Prüfer: standard algorithm.
		for i := range degree {
			degree[i] = 1
			adj[i] = adj[i][:0]
		}
		for _, v := range seq {
			degree[v]++
		}
		type edge struct{ u, v int }
		edges := make([]edge, 0, m-1)
		// Use a simple scan; m <= 8 so O(m^2) decode is fine.
		deg := append([]int(nil), degree...)
		used := make([]bool, m)
		for _, v := range seq {
			leaf := -1
			for u := 0; u < m; u++ {
				if !used[u] && deg[u] == 1 {
					leaf = u
					break
				}
			}
			edges = append(edges, edge{leaf, v})
			used[leaf] = true
			deg[v]--
			deg[leaf]--
		}
		last := make([]int, 0, 2)
		for u := 0; u < m; u++ {
			if !used[u] && deg[u] == 1 {
				last = append(last, u)
			}
		}
		edges = append(edges, edge{last[0], last[1]})
		// Root the tree at 0, aggregate subtree demand bottom-up.
		for i := range adj {
			adj[i] = adj[i][:0]
		}
		for _, e := range edges {
			adj[e.u] = append(adj[e.u], e.v)
			adj[e.v] = append(adj[e.v], e.u)
		}
		for i := range parent {
			parent[i] = -2
		}
		order = order[:0]
		parent[0] = -1
		stack := []int{0}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, u)
			for _, v := range adj[u] {
				if parent[v] == -2 {
					parent[v] = u
					stack = append(stack, v)
				}
			}
		}
		sub := append([]float64(nil), demand...)
		cost := 0.0
		for i := len(order) - 1; i >= 1; i-- {
			u := order[i]
			p := parent[u]
			sub[p] += sub[u]
			_, _, unit := in.Catalog.BestCableConfig(sub[u])
			cost += unit * dist[u][p]
			if cost >= best {
				return // prune
			}
		}
		if cost < best {
			best = cost
			bestParent = append(bestParent[:0], parent...)
		}
	}
	var rec func(pos int)
	rec = func(pos int) {
		if pos == len(seq) {
			evaluate()
			return
		}
		for v := 0; v < m; v++ {
			seq[pos] = v
			rec(pos + 1)
		}
	}
	rec(0)
	return best, append([]int(nil), bestParent...), nil
}

// BuildTreeFromParents materializes a Network from a parent array as
// returned by ExactTreeOPT.
func BuildTreeFromParents(in *Instance, parent []int) (*Network, error) {
	g := newNetworkSkeleton(in)
	for v := 1; v < len(parent); v++ {
		p := parent[v]
		if p < 0 || p >= len(parent) {
			return nil, fmt.Errorf("access: bad parent %d for node %d", p, v)
		}
		nv, np := g.Node(v), g.Node(p)
		d := geom.Point{X: nv.X, Y: nv.Y}.Dist(geom.Point{X: np.X, Y: np.Y})
		g.AddEdge(graph.Edge{U: p, V: v, Weight: d, Cable: -1})
	}
	return finishTree(in, g)
}
