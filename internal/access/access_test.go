package access

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/stats"
)

func testInstance(t *testing.T, n int, seed int64) *Instance {
	t.Helper()
	in, err := RandomInstance(InstanceConfig{
		N: n, Seed: seed, DemandMin: 1, DemandMax: 8, RootAtCenter: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestDefaultCatalogValid(t *testing.T) {
	if err := DefaultCatalog().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogValidateRejectsBadOrdering(t *testing.T) {
	bad := []Catalog{
		{}, // empty
		{{Name: "a", Capacity: 0, Install: 1, Usage: 1}},
		{
			{Name: "a", Capacity: 4, Install: 1, Usage: 1},
			{Name: "b", Capacity: 1, Install: 2, Usage: 0.5}, // capacity drops
		},
		{
			{Name: "a", Capacity: 1, Install: 2, Usage: 1},
			{Name: "b", Capacity: 4, Install: 1, Usage: 0.5}, // install drops
		},
		{
			{Name: "a", Capacity: 1, Install: 1, Usage: 0.5},
			{Name: "b", Capacity: 4, Install: 2, Usage: 0.5}, // usage not strictly decreasing
		},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("catalog %d should be invalid", i)
		}
	}
}

func TestCatalogEconomiesOfScaleProperty(t *testing.T) {
	// Property: in a valid catalog, per-unit-of-capacity install cost
	// decreases with tier (that's what economies of scale means here).
	cat := DefaultCatalog()
	for i := 1; i < len(cat); i++ {
		prev := cat[i-1].Install / cat[i-1].Capacity
		cur := cat[i].Install / cat[i].Capacity
		if cur >= prev {
			t.Fatalf("tier %d has no install economy of scale: %v >= %v", i, cur, prev)
		}
	}
}

func TestBestCableConfigSmallFlowPrefersThin(t *testing.T) {
	cat := DefaultCatalog()
	k, n, _ := cat.BestCableConfig(0.5)
	if k != 0 || n != 1 {
		t.Fatalf("tiny flow got cable %d x%d, want thin x1", k, n)
	}
}

func TestBestCableConfigBigFlowPrefersThick(t *testing.T) {
	cat := DefaultCatalog()
	k, _, _ := cat.BestCableConfig(60)
	if k != len(cat)-1 {
		t.Fatalf("bulk flow got cable %d, want thickest %d", k, len(cat)-1)
	}
}

func TestBestCableConfigCapacityRespected(t *testing.T) {
	err := quick.Check(func(raw uint16) bool {
		f := float64(raw) / 100.0
		cat := DefaultCatalog()
		k, n, _ := cat.BestCableConfig(f)
		return float64(n)*cat[k].Capacity >= f
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBestCableConfigIsArgmin(t *testing.T) {
	cat := DefaultCatalog()
	for _, f := range []float64{0, 0.3, 1, 2.5, 7, 20, 63, 64, 200} {
		k, n, got := cat.BestCableConfig(f)
		for kk, tt := range cat {
			nn := 1
			if f > 0 {
				nn = int(math.Ceil(f / tt.Capacity))
				if nn < 1 {
					nn = 1
				}
			}
			c := float64(nn)*tt.Install + tt.Usage*f
			if c < got-1e-12 {
				t.Fatalf("flow %v: chose %d x%d cost %v but %d x%d costs %v", f, k, n, got, kk, nn, c)
			}
		}
	}
}

func TestBestCableConfigNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative flow should panic")
		}
	}()
	DefaultCatalog().BestCableConfig(-1)
}

func TestRandomInstanceShape(t *testing.T) {
	in := testInstance(t, 100, 1)
	if len(in.Customers) != 100 {
		t.Fatalf("customers = %d", len(in.Customers))
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range in.Customers {
		if c.Demand < 1 || c.Demand > 8 {
			t.Fatalf("demand %v out of [1,8]", c.Demand)
		}
	}
	if in.TotalDemand() < 100 {
		t.Fatal("total demand below minimum possible")
	}
}

func TestRandomInstanceClustered(t *testing.T) {
	in, err := RandomInstance(InstanceConfig{
		N: 300, Seed: 2, DemandMin: 1, Clusters: 5, ClusterSigma: 0.02, RootAtCenter: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Customers) != 300 {
		t.Fatalf("clustered customers = %d", len(in.Customers))
	}
	// Clustered instances should have much lower mean nearest-neighbor
	// distance than uniform ones.
	mean := func(in *Instance) float64 {
		pts := customerPoints(in)
		tr := geom.NewKDTree(pts)
		total := 0.0
		for _, p := range pts {
			nb := tr.KNearest(p, 2) // first is the point itself
			total += nb[1].Dist
		}
		return total / float64(len(pts))
	}
	uin := testInstance(t, 300, 2)
	if mean(in) >= mean(uin) {
		t.Fatalf("clustered NN distance %v not below uniform %v", mean(in), mean(uin))
	}
}

func TestRandomInstanceErrors(t *testing.T) {
	if _, err := RandomInstance(InstanceConfig{N: 0}); err == nil {
		t.Fatal("N=0 should error")
	}
}

func TestMMPIncrementalIsTree(t *testing.T) {
	in := testInstance(t, 400, 3)
	net, err := MMPIncremental(in, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Graph.IsTree() {
		t.Fatal("MMP output is not a tree — violates the paper's §4.2 claim structure")
	}
	if net.Graph.NumNodes() != 401 {
		t.Fatalf("nodes = %d", net.Graph.NumNodes())
	}
	if net.TotalCost() <= 0 {
		t.Fatal("non-positive cost")
	}
}

func TestMMPFlowConservation(t *testing.T) {
	in := testInstance(t, 200, 4)
	net, err := MMPIncremental(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of flows on root's incident edges must equal total demand.
	total := 0.0
	net.Graph.Neighbors(0, func(_, eid int) {
		total += net.Flow[eid]
	})
	if math.Abs(total-in.TotalDemand()) > 1e-6 {
		t.Fatalf("flow into root %v != total demand %v", total, in.TotalDemand())
	}
}

func TestMMPCapacityRespected(t *testing.T) {
	in := testInstance(t, 200, 5)
	net, err := MMPIncremental(in, 9)
	if err != nil {
		t.Fatal(err)
	}
	for eid := range net.Flow {
		cap := float64(net.CableCount[eid]) * in.Catalog[net.CableKind[eid]].Capacity
		if net.Flow[eid] > cap+1e-9 {
			t.Fatalf("edge %d: flow %v exceeds installed capacity %v", eid, net.Flow[eid], cap)
		}
	}
}

func TestMMPBeatsLowerBoundSanity(t *testing.T) {
	in := testInstance(t, 300, 6)
	net, err := MMPIncremental(in, 10)
	if err != nil {
		t.Fatal(err)
	}
	lb := LowerBound(in)
	if net.TotalCost() < lb {
		t.Fatalf("cost %v below lower bound %v — lower bound is broken", net.TotalCost(), lb)
	}
	// A constant-factor-style heuristic should land within a modest
	// multiple of LB on benign instances.
	if net.TotalCost() > 20*lb {
		t.Fatalf("cost %v more than 20x the lower bound %v", net.TotalCost(), lb)
	}
}

func TestSampleAndAugmentIsTree(t *testing.T) {
	in := testInstance(t, 400, 7)
	net, err := SampleAndAugment(in, 11, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Graph.IsTree() {
		t.Fatal("sample-and-augment output is not a tree")
	}
	if net.TotalCost() < LowerBound(in) {
		t.Fatal("cost below lower bound")
	}
}

func TestSampleAndAugmentBadProb(t *testing.T) {
	in := testInstance(t, 10, 8)
	for _, p := range []float64{0, 1, -0.5, 2} {
		if _, err := SampleAndAugment(in, 1, p); err == nil {
			t.Fatalf("p=%v should error", p)
		}
	}
}

func TestSingleCableMSTTreeAndCost(t *testing.T) {
	in := testInstance(t, 300, 9)
	net, err := SingleCableMST(in)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Graph.IsTree() {
		t.Fatal("MST baseline not a tree")
	}
	for eid := range net.CableKind {
		if net.CableKind[eid] != 0 {
			t.Fatal("single-cable baseline used a thick cable")
		}
	}
}

func TestDirectStarShape(t *testing.T) {
	in := testInstance(t, 150, 10)
	net, err := DirectStar(in)
	if err != nil {
		t.Fatal(err)
	}
	if net.Graph.Degree(0) != 150 {
		t.Fatalf("root degree = %d, want 150", net.Graph.Degree(0))
	}
	if !net.Graph.IsTree() {
		t.Fatal("star is a tree")
	}
}

func TestEconomiesOfScaleMakeSharingWin(t *testing.T) {
	// The central §4.1 economics: with economies of scale, aggregation
	// (MMP) must beat dedicated per-customer lines (DirectStar) on a
	// large instance.
	in := testInstance(t, 500, 11)
	mmp, err := MMPIncremental(in, 12)
	if err != nil {
		t.Fatal(err)
	}
	star, err := DirectStar(in)
	if err != nil {
		t.Fatal(err)
	}
	if mmp.TotalCost() >= star.TotalCost() {
		t.Fatalf("MMP %v did not beat DirectStar %v", mmp.TotalCost(), star.TotalCost())
	}
}

func TestGreedyConcentrator(t *testing.T) {
	in := testInstance(t, 200, 12)
	net, err := GreedyConcentrator(in, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Graph.IsTree() {
		t.Fatal("concentrator solution not a tree")
	}
	// 1 root + 200 customers + 8 concentrators.
	if net.Graph.NumNodes() != 209 {
		t.Fatalf("nodes = %d, want 209", net.Graph.NumNodes())
	}
	if _, err := GreedyConcentrator(in, 0, 1); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestKMeansBasic(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 0.1, Y: 0}, {X: 1, Y: 1}, {X: 0.9, Y: 1}}
	centers := KMeans(pts, nil, 2, 1, 20)
	if len(centers) != 2 {
		t.Fatalf("centers = %d", len(centers))
	}
	// The two centers should separate the two clusters.
	d := centers[0].Dist(centers[1])
	if d < 0.5 {
		t.Fatalf("centers too close: %v", d)
	}
}

func TestKMeansKExceedsN(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	centers := KMeans(pts, nil, 10, 1, 5)
	if len(centers) != 2 {
		t.Fatalf("k>n should clamp, got %d centers", len(centers))
	}
	if KMeans(nil, nil, 3, 1, 5) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestAugmentTwoEdgeConnected(t *testing.T) {
	in := testInstance(t, 200, 13)
	net, err := MMPIncremental(in, 14)
	if err != nil {
		t.Fatal(err)
	}
	before := net.Graph.NumEdges()
	added := AugmentTwoEdgeConnected(in, net)
	if added <= 0 {
		t.Fatal("augmentation added no edges")
	}
	if net.Graph.NumEdges() != before+added {
		t.Fatal("edge accounting mismatch")
	}
	if !net.Graph.IsTwoEdgeConnected() {
		t.Fatal("augmented network still has bridges")
	}
	if net.Graph.IsTree() {
		t.Fatal("augmented network should no longer be a tree (footnote 7)")
	}
}

func TestAugmentTinyNetwork(t *testing.T) {
	in := &Instance{
		Root:      geom.Point{X: 0.5, Y: 0.5},
		Customers: []Customer{{Loc: geom.Point{X: 0.1, Y: 0.1}, Demand: 1}},
		Catalog:   DefaultCatalog(),
	}
	net, err := DirectStar(in)
	if err != nil {
		t.Fatal(err)
	}
	if added := AugmentTwoEdgeConnected(in, net); added != 0 {
		t.Fatalf("2-node network augmentation added %d edges, want 0", added)
	}
}

func TestMMPExponentialDegreeTail(t *testing.T) {
	// The §4.2 headline claim at test scale: MMP trees have
	// exponential, not power-law, degree tails.
	in := testInstance(t, 1500, 14)
	net, err := MMPIncremental(in, 15)
	if err != nil {
		t.Fatal(err)
	}
	c := stats.ClassifyTail(net.Graph.Degrees())
	if c.Kind == stats.TailPowerLaw {
		t.Fatalf("MMP degree tail classified power-law (llr=%v), contradicting §4.2", c.LogLikRatio)
	}
}

func TestLowerBoundPositiveAndBelowAll(t *testing.T) {
	in := testInstance(t, 250, 15)
	lb := LowerBound(in)
	if lb <= 0 {
		t.Fatal("lower bound must be positive")
	}
	nets := []*Network{}
	if n, err := MMPIncremental(in, 16); err == nil {
		nets = append(nets, n)
	}
	if n, err := SingleCableMST(in); err == nil {
		nets = append(nets, n)
	}
	if n, err := DirectStar(in); err == nil {
		nets = append(nets, n)
	}
	if n, err := SampleAndAugment(in, 17, 0.3); err == nil {
		nets = append(nets, n)
	}
	if len(nets) != 4 {
		t.Fatal("some algorithm failed")
	}
	for i, n := range nets {
		if n.TotalCost() < lb {
			t.Fatalf("algorithm %d cost %v below LB %v", i, n.TotalCost(), lb)
		}
	}
}

func TestValidateInstanceErrors(t *testing.T) {
	in := &Instance{Catalog: DefaultCatalog()}
	if err := in.Validate(); err == nil {
		t.Fatal("no customers should error")
	}
	in.Customers = []Customer{{Demand: -1}}
	if err := in.Validate(); err == nil {
		t.Fatal("negative demand should error")
	}
}

func TestMMPDeterministic(t *testing.T) {
	in := testInstance(t, 150, 16)
	a, err := MMPIncremental(in, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MMPIncremental(in, 99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.TotalCost()-b.TotalCost()) > 1e-12 {
		t.Fatal("MMP not deterministic for fixed seed")
	}
}
