package access

import (
	"testing"
)

func TestRingMetroIsTwoEdgeConnected(t *testing.T) {
	in := testInstance(t, 200, 21)
	net, err := RingMetro(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	if net.Graph.IsTree() {
		t.Fatal("ring design should not be a tree")
	}
	if !net.Graph.IsTwoEdgeConnected() {
		t.Fatal("ring design must be 2-edge-connected")
	}
	if net.Graph.NumNodes() != 201 {
		t.Fatalf("nodes = %d", net.Graph.NumNodes())
	}
}

func TestRingMetroEdgeCount(t *testing.T) {
	// n customers in rings of size r: each full ring of r members has
	// r+1 edges. With n=20, r=5: 4 rings x 6 edges = 24.
	in := testInstance(t, 20, 22)
	net, err := RingMetro(in, 5)
	if err != nil {
		t.Fatal(err)
	}
	if net.Graph.NumEdges() != 24 {
		t.Fatalf("edges = %d, want 24", net.Graph.NumEdges())
	}
}

func TestRingMetroCapacityCoversRingDemand(t *testing.T) {
	in := testInstance(t, 100, 23)
	net, err := RingMetro(in, 6)
	if err != nil {
		t.Fatal(err)
	}
	for eid := range net.Flow {
		cap := float64(net.CableCount[eid]) * in.Catalog[net.CableKind[eid]].Capacity
		if net.Flow[eid] > cap+1e-9 {
			t.Fatalf("edge %d: ring demand %v exceeds capacity %v", eid, net.Flow[eid], cap)
		}
	}
}

func TestRingMetroBadRingSize(t *testing.T) {
	in := testInstance(t, 10, 24)
	if _, err := RingMetro(in, 1); err == nil {
		t.Fatal("ring size 1 should error")
	}
}

func TestRingCostsMoreThanTree(t *testing.T) {
	// Protection capacity is not free: the ring premium must be positive.
	in := testInstance(t, 300, 25)
	rep, err := CompareRingVsTree(in, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CostPremium <= 0 {
		t.Fatalf("ring premium = %v, want > 0", rep.CostPremium)
	}
	if !rep.TreeIsTree || !rep.Ring2EdgeConn {
		t.Fatalf("shape flags wrong: %+v", rep)
	}
}

func TestRingMetroSingleCustomer(t *testing.T) {
	in := testInstance(t, 1, 26)
	net, err := RingMetro(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Degenerate ring: root->c->root is a protected dual link.
	if net.Graph.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (dual link)", net.Graph.NumEdges())
	}
	if !net.Graph.IsTwoEdgeConnected() {
		t.Fatal("dual link should be 2-edge-connected")
	}
}
