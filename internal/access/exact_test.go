package access

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func tinyInstance(t *testing.T, n int, seed int64) *Instance {
	t.Helper()
	in, err := RandomInstance(InstanceConfig{
		N: n, Seed: seed, DemandMin: 1, DemandMax: 8, RootAtCenter: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestExactOPTAboveLowerBound(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := tinyInstance(t, 6, seed)
		opt, parent, err := ExactTreeOPT(in)
		if err != nil {
			t.Fatal(err)
		}
		lb := LowerBound(in)
		if opt < lb-1e-9 {
			t.Fatalf("seed %d: OPT %v below lower bound %v", seed, opt, lb)
		}
		if len(parent) != 7 || parent[0] != -1 {
			t.Fatalf("seed %d: bad parent array %v", seed, parent)
		}
	}
}

func TestHeuristicsNeverBeatExact(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := tinyInstance(t, 6, seed)
		opt, _, err := ExactTreeOPT(in)
		if err != nil {
			t.Fatal(err)
		}
		for name, run := range map[string]func() (*Network, error){
			"mmp":  func() (*Network, error) { return MMPIncremental(in, rng.Derive(seed, 1)) },
			"sa":   func() (*Network, error) { return SampleAndAugment(in, rng.Derive(seed, 2), 0.3) },
			"mst":  func() (*Network, error) { return SingleCableMST(in) },
			"star": func() (*Network, error) { return DirectStar(in) },
		} {
			net, err := run()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if net.TotalCost() < opt-1e-9 {
				t.Fatalf("seed %d: %s cost %v beats the exact optimum %v — exact solver or costing is broken",
					seed, name, net.TotalCost(), opt)
			}
		}
	}
}

func TestMMPNearOptimalOnTinyInstances(t *testing.T) {
	// The empirical teeth behind the §4.1 constant-factor claim: on
	// exactly-solvable instances the incremental heuristic lands within
	// a small factor of true OPT.
	worst := 0.0
	for seed := int64(0); seed < 10; seed++ {
		in := tinyInstance(t, 6, seed)
		opt, _, err := ExactTreeOPT(in)
		if err != nil {
			t.Fatal(err)
		}
		net, err := MMPIncremental(in, rng.Derive(seed, 3))
		if err != nil {
			t.Fatal(err)
		}
		if ratio := net.TotalCost() / opt; ratio > worst {
			worst = ratio
		}
	}
	if worst > 2.0 {
		t.Fatalf("MMP/OPT worst ratio %v on tiny instances, expected < 2", worst)
	}
}

func TestExactOPTMatchesBruteCheckOnTwoCustomers(t *testing.T) {
	// With 2 customers there are exactly 3 labelled trees; verify by
	// hand pricing.
	in := tinyInstance(t, 2, 3)
	opt, parent, err := ExactTreeOPT(in)
	if err != nil {
		t.Fatal(err)
	}
	price := func(parent []int) float64 {
		net, err := BuildTreeFromParents(in, parent)
		if err != nil {
			t.Fatal(err)
		}
		return net.TotalCost()
	}
	candidates := [][]int{
		{-1, 0, 0}, // both direct to root
		{-1, 0, 1}, // chain root-1-2
		{-1, 2, 0}, // chain root-2-1
	}
	best := math.Inf(1)
	for _, c := range candidates {
		if v := price(c); v < best {
			best = v
		}
	}
	if math.Abs(opt-best) > 1e-9 {
		t.Fatalf("exact OPT %v != brute minimum %v (parent %v)", opt, best, parent)
	}
}

func TestExactOPTCapEnforced(t *testing.T) {
	in := tinyInstance(t, MaxExactCustomers+1, 4)
	if _, _, err := ExactTreeOPT(in); err == nil {
		t.Fatal("oversized instance should be rejected")
	}
}

func TestBuildTreeFromParentsValidates(t *testing.T) {
	in := tinyInstance(t, 3, 5)
	if _, err := BuildTreeFromParents(in, []int{-1, 0, 99, 0}); err == nil {
		t.Fatal("bad parent id should error")
	}
	net, err := BuildTreeFromParents(in, []int{-1, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !net.Graph.IsTree() {
		t.Fatal("star parents should build a tree")
	}
}

func TestExactSingleCustomer(t *testing.T) {
	in := tinyInstance(t, 1, 6)
	opt, parent, err := ExactTreeOPT(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(parent) != 2 || parent[1] != 0 {
		t.Fatalf("parent = %v", parent)
	}
	// Only one tree exists; cost = best config for the demand * dist.
	_, _, unit := in.Catalog.BestCableConfig(in.Customers[0].Demand)
	want := unit * in.Customers[0].Loc.Dist(in.Root)
	if math.Abs(opt-want) > 1e-9 {
		t.Fatalf("opt = %v, want %v", opt, want)
	}
}
