// Package access implements the paper's §4 case study: the buy-at-bulk
// network access design problem and the randomized approximation in the
// spirit of Meyerson–Munagala–Plotkin ("Designing networks incrementally",
// the paper's reference [24]), plus the baseline heuristics and lower
// bounds used to evaluate it.
//
// Problem (paper §4.1, after Salman et al. [26] and Andrews–Zhang [2]):
// connect spatially distributed customers, each with a traffic demand, to
// a core node using cables drawn from a catalog of K types. Cable type k
// has capacity u_k, fixed installation cost σ_k per unit length, and
// marginal usage cost δ_k per unit flow per unit length, exhibiting
// economies of scale:
//
//	u_1 ≤ u_2 ≤ … ≤ u_K,   σ_1 ≤ σ_2 ≤ … ≤ σ_K,   δ_1 > δ_2 > … > δ_K.
//
// Routing and cable installation must be decided together; the problem is
// NP-hard. The paper's preliminary finding (§4.2) is that the randomized
// approximation "yields tree topologies with exponential node degree
// distributions" — experiment E2 regenerates exactly that.
package access

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/graph"
)

// CableType is one {capacity, cost} option from the paper's §4.1.
type CableType struct {
	Name     string
	Capacity float64 // u_k: max flow carried by one cable
	Install  float64 // σ_k: fixed cost per unit length
	Usage    float64 // δ_k: cost per unit flow per unit length
}

// Catalog is an ordered set of cable types satisfying the buy-at-bulk
// economies-of-scale conditions.
type Catalog []CableType

// Validate checks the economies-of-scale ordering required by §4.1.
func (c Catalog) Validate() error {
	if len(c) == 0 {
		return fmt.Errorf("access: empty cable catalog")
	}
	for i, t := range c {
		if t.Capacity <= 0 || t.Install <= 0 || t.Usage <= 0 {
			return fmt.Errorf("access: cable %d (%s) has non-positive parameters", i, t.Name)
		}
		if i == 0 {
			continue
		}
		p := c[i-1]
		if t.Capacity < p.Capacity {
			return fmt.Errorf("access: capacities not non-decreasing at %d", i)
		}
		if t.Install < p.Install {
			return fmt.Errorf("access: install costs not non-decreasing at %d", i)
		}
		if t.Usage >= p.Usage {
			return fmt.Errorf("access: usage costs not strictly decreasing at %d", i)
		}
	}
	return nil
}

// DefaultCatalog returns the "fictitious, yet realistic" cable catalog in
// the sense of the paper's footnote 8: parameters consistent with the
// algorithm's assumptions and the (2003) marketplace — four SONET-like
// tiers with strong economies of scale. Capacities are in demand units
// (think OC-3 ≈ 155 Mb/s ≡ 1.0).
func DefaultCatalog() Catalog {
	return Catalog{
		{Name: "oc3", Capacity: 1, Install: 1.0, Usage: 1.0},
		{Name: "oc12", Capacity: 4, Install: 2.2, Usage: 0.35},
		{Name: "oc48", Capacity: 16, Install: 4.8, Usage: 0.12},
		{Name: "oc192", Capacity: 64, Install: 10.0, Usage: 0.04},
	}
}

// BestCableConfig returns, for a flow f on a unit-length edge, the cable
// type and parallel count minimizing ceil(f/u_k)*σ_k + δ_k*f, with ties
// broken toward the smaller (cheaper-to-install) type. Zero flow still
// needs one cable of the smallest type (the edge exists).
func (c Catalog) BestCableConfig(f float64) (kind, count int, cost float64) {
	if f < 0 {
		panic("access: negative flow")
	}
	bestK, bestN, bestC := -1, 0, math.Inf(1)
	for k, t := range c {
		n := 1
		if f > 0 {
			n = int(math.Ceil(f / t.Capacity))
			if n < 1 {
				n = 1
			}
		}
		cost := float64(n)*t.Install + t.Usage*f
		if cost < bestC {
			bestK, bestN, bestC = k, n, cost
		}
	}
	return bestK, bestN, bestC
}

// Customer is a demand point.
type Customer struct {
	Loc    geom.Point
	Demand float64
}

// Instance is one buy-at-bulk access design problem: customers to be
// connected to a single core (sink) node.
type Instance struct {
	Root      geom.Point
	Customers []Customer
	Catalog   Catalog
}

// Validate reports an instance error, or nil.
func (in *Instance) Validate() error {
	if err := in.Catalog.Validate(); err != nil {
		return err
	}
	if len(in.Customers) == 0 {
		return fmt.Errorf("access: no customers")
	}
	for i, c := range in.Customers {
		if c.Demand < 0 {
			return fmt.Errorf("access: customer %d has negative demand", i)
		}
	}
	return nil
}

// TotalDemand sums customer demands.
func (in *Instance) TotalDemand() float64 {
	s := 0.0
	for _, c := range in.Customers {
		s += c.Demand
	}
	return s
}

// Network is a solved access design: a graph whose node 0 is the root and
// nodes 1..n are the customers in instance order (plus any Steiner/
// concentrator nodes after them), with per-edge flow and cable config.
type Network struct {
	Graph *graph.Graph
	// Flow[i] is the traffic on edge i (toward the root).
	Flow []float64
	// CableKind[i] / CableCount[i] give the installed configuration.
	CableKind  []int
	CableCount []int
	// InstallCost + UsageCost = TotalCost().
	InstallCost float64
	UsageCost   float64
}

// TotalCost returns installation plus usage cost.
func (n *Network) TotalCost() float64 { return n.InstallCost + n.UsageCost }

// newNetworkSkeleton builds the node set for an instance: root then
// customers, returning the graph.
func newNetworkSkeleton(in *Instance) *graph.Graph {
	g := graph.New(len(in.Customers) + 1)
	g.AddNode(graph.Node{Kind: graph.KindCore, X: in.Root.X, Y: in.Root.Y})
	for _, c := range in.Customers {
		g.AddNode(graph.Node{Kind: graph.KindCustomer, X: c.Loc.X, Y: c.Loc.Y, Capacity: c.Demand})
	}
	return g
}

// finishTree computes flows, cable assignment and costs for a tree
// network rooted at node 0, where node i>0's demand is the node's
// Capacity annotation. The graph must be a tree spanning all nodes.
func finishTree(in *Instance, g *graph.Graph) (*Network, error) {
	if !g.IsTree() {
		return nil, fmt.Errorf("access: solution graph is not a tree (%d nodes, %d edges)", g.NumNodes(), g.NumEdges())
	}
	n := g.NumNodes()
	// Order nodes by decreasing BFS depth so child flows are ready before
	// their parents.
	depth, parent := g.BFS(0)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Counting sort by depth, deepest first.
	maxD := 0
	for _, d := range depth {
		if d > maxD {
			maxD = d
		}
	}
	buckets := make([][]int, maxD+1)
	for v, d := range depth {
		if d < 0 {
			return nil, fmt.Errorf("access: node %d unreachable from root", v)
		}
		buckets[d] = append(buckets[d], v)
	}
	idx := 0
	for d := maxD; d >= 0; d-- {
		for _, v := range buckets[d] {
			order[idx] = v
			idx++
		}
	}

	subDemand := make([]float64, n)
	for v := 0; v < n; v++ {
		subDemand[v] = g.Node(v).Capacity
	}
	net := &Network{
		Graph:      g,
		Flow:       make([]float64, g.NumEdges()),
		CableKind:  make([]int, g.NumEdges()),
		CableCount: make([]int, g.NumEdges()),
	}
	for _, v := range order {
		if v == 0 {
			continue
		}
		p := parent[v]
		eid := g.FindEdge(v, p)
		if eid < 0 {
			return nil, fmt.Errorf("access: missing parent edge for node %d", v)
		}
		f := subDemand[v]
		subDemand[p] += f
		kind, count, unitCost := in.Catalog.BestCableConfig(f)
		length := g.Edge(eid).Weight
		net.Flow[eid] = f
		net.CableKind[eid] = kind
		net.CableCount[eid] = count
		net.InstallCost += float64(count) * in.Catalog[kind].Install * length
		net.UsageCost += in.Catalog[kind].Usage * f * length
		_ = unitCost
		g.Edge(eid).Capacity = float64(count) * in.Catalog[kind].Capacity
		g.Edge(eid).Cable = kind
	}
	return net, nil
}

// LowerBound returns a valid lower bound on the optimal cost of the
// instance: every unit of demand must travel at least the straight-line
// distance to the root at no less than the cheapest usage rate δ_K, and
// any feasible network must contain a connected subgraph spanning root
// and customers, whose length is at least half the terminal MST, installed
// at no less than σ_1 per unit length.
func LowerBound(in *Instance) float64 {
	routing := 0.0
	for _, c := range in.Customers {
		routing += c.Demand * c.Loc.Dist(in.Root)
	}
	routing *= in.Catalog[len(in.Catalog)-1].Usage

	xs := make([]float64, len(in.Customers)+1)
	ys := make([]float64, len(in.Customers)+1)
	xs[0], ys[0] = in.Root.X, in.Root.Y
	for i, c := range in.Customers {
		xs[i+1], ys[i+1] = c.Loc.X, c.Loc.Y
	}
	mstLen := 0.0
	for _, p := range graph.EuclideanMST(xs, ys) {
		mstLen += math.Hypot(xs[p[0]]-xs[p[1]], ys[p[0]]-ys[p[1]])
	}
	install := in.Catalog[0].Install * mstLen / 2
	return routing + install
}
