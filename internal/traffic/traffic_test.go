package traffic

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func testGeo(t *testing.T, n int, seed int64) *Geography {
	t.Helper()
	g, err := GenerateGeography(GeographyConfig{
		NumCities: n, Seed: seed, ZipfExponent: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateGeographyBasics(t *testing.T) {
	g := testGeo(t, 20, 1)
	if len(g.Cities) != 20 {
		t.Fatalf("cities = %d", len(g.Cities))
	}
	if math.Abs(g.TotalPopulation()-1e6) > 1 {
		t.Fatalf("total population = %v, want 1e6", g.TotalPopulation())
	}
	for _, c := range g.Cities {
		if !g.Region.Contains(c.Loc) {
			t.Fatalf("city %s outside region", c.Name)
		}
		if c.Population <= 0 {
			t.Fatalf("city %s has non-positive population", c.Name)
		}
	}
}

func TestGeographySortedByPopulation(t *testing.T) {
	g := testGeo(t, 15, 2)
	for i := 1; i < len(g.Cities); i++ {
		if g.Cities[i].Population > g.Cities[i-1].Population {
			t.Fatal("cities not sorted by population")
		}
	}
}

func TestGeographyZipfSkew(t *testing.T) {
	g := testGeo(t, 30, 3)
	// With exponent 1, largest city / median city should be large.
	if g.Cities[0].Population < 5*g.Cities[15].Population {
		t.Fatalf("Zipf skew too weak: %v vs %v", g.Cities[0].Population, g.Cities[15].Population)
	}
}

func TestGeographyEqualWhenExponentZero(t *testing.T) {
	g, err := GenerateGeography(GeographyConfig{NumCities: 10, Seed: 4, ZipfExponent: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range g.Cities {
		if math.Abs(c.Population-1e5) > 1e-6 {
			t.Fatalf("exponent 0 should equalize: %v", c.Population)
		}
	}
}

func TestGeographyMinSeparation(t *testing.T) {
	g, err := GenerateGeography(GeographyConfig{
		NumCities: 15, Seed: 5, MinSeparation: 0.08,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Cities {
		for j := i + 1; j < len(g.Cities); j++ {
			if d := g.Cities[i].Loc.Dist(g.Cities[j].Loc); d < 0.08 {
				// Rejection gives up after 200 attempts, so allow rare
				// close pairs only if region is crowded; with 15 cities
				// at 0.08 it should always succeed.
				t.Fatalf("cities %d,%d separated by %v < 0.08", i, j, d)
			}
		}
	}
}

func TestGenerateGeographyErrors(t *testing.T) {
	if _, err := GenerateGeography(GeographyConfig{NumCities: 0}); err == nil {
		t.Fatal("0 cities should error")
	}
}

// TestGeographyOverlapsCounted pins the infeasible-separation behavior:
// many cities with a separation larger than the region can hold must
// still produce the requested city count, but the violations are
// surfaced in Overlaps rather than silently accepted.
func TestGeographyOverlapsCounted(t *testing.T) {
	g, err := GenerateGeography(GeographyConfig{
		NumCities: 40, Seed: 11, MinSeparation: 0.9, // at most a few 0.9-separated points fit the unit square
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cities) != 40 {
		t.Fatalf("cities = %d, want 40 even when separation is infeasible", len(g.Cities))
	}
	if g.Overlaps == 0 {
		t.Fatal("infeasible MinSeparation placed overlapping cities without counting them")
	}
	// Feasible instances must report a clean placement.
	ok, err := GenerateGeography(GeographyConfig{NumCities: 15, Seed: 5, MinSeparation: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if ok.Overlaps != 0 {
		t.Fatalf("feasible placement reported %d overlaps", ok.Overlaps)
	}
}

func TestGravityDemandSymmetricPositive(t *testing.T) {
	g := testGeo(t, 12, 6)
	m := GravityDemand(g, GravityConfig{Scale: 100, Exponent: 1})
	for i := range m {
		if m[i][i] != 0 {
			t.Fatal("self-demand must be zero")
		}
		for j := range m[i] {
			if m[i][j] != m[j][i] {
				t.Fatal("demand matrix must be symmetric")
			}
			if i != j && m[i][j] <= 0 {
				t.Fatal("demand must be positive between distinct cities")
			}
		}
	}
	if m.Total() <= 0 {
		t.Fatal("total demand must be positive")
	}
}

func TestGravityPopulationEffect(t *testing.T) {
	g := &Geography{
		Region: geom.UnitSquare,
		Cities: []City{
			{Name: "big", Loc: geom.Point{X: 0.2, Y: 0.5}, Population: 1000},
			{Name: "small", Loc: geom.Point{X: 0.8, Y: 0.5}, Population: 10},
			{Name: "mid", Loc: geom.Point{X: 0.5, Y: 0.1}, Population: 100},
		},
	}
	m := GravityDemand(g, GravityConfig{Scale: 1, Exponent: 0})
	// With no distance decay, demand ratios track population products.
	if m[0][2] <= m[1][2] {
		t.Fatal("bigger city pair should have bigger demand")
	}
}

func TestGravityDistanceDecay(t *testing.T) {
	g := &Geography{
		Region: geom.UnitSquare,
		Cities: []City{
			{Name: "a", Loc: geom.Point{X: 0.1, Y: 0.5}, Population: 100},
			{Name: "near", Loc: geom.Point{X: 0.2, Y: 0.5}, Population: 100},
			{Name: "far", Loc: geom.Point{X: 0.9, Y: 0.5}, Population: 100},
		},
	}
	m := GravityDemand(g, GravityConfig{Scale: 1, Exponent: 1})
	if m[0][1] <= m[0][2] {
		t.Fatal("nearer pair should have larger demand under decay")
	}
}

func TestGravityEpsilonFloorsDistance(t *testing.T) {
	g := &Geography{
		Region: geom.UnitSquare,
		Cities: []City{
			{Name: "a", Loc: geom.Point{X: 0.5, Y: 0.5}, Population: 100},
			{Name: "b", Loc: geom.Point{X: 0.5, Y: 0.5}, Population: 100},
		},
	}
	m := GravityDemand(g, GravityConfig{Scale: 1, Exponent: 2, Epsilon: 0.05})
	if math.IsInf(m[0][1], 1) || math.IsNaN(m[0][1]) {
		t.Fatal("epsilon must prevent blowup at zero distance")
	}
}

func TestRevenueModel(t *testing.T) {
	rm := RevenueModel{PricePerUnit: 2.5}
	if rm.Revenue(10) != 25 {
		t.Fatalf("revenue = %v", rm.Revenue(10))
	}
}

func TestAllocateCustomersSumsToTotal(t *testing.T) {
	g := testGeo(t, 9, 7)
	alloc := AllocateCustomers(g, 1000)
	sum := 0
	for _, a := range alloc {
		sum += a
	}
	if sum != 1000 {
		t.Fatalf("allocation sums to %d, want 1000", sum)
	}
	// Biggest city gets the most.
	for i := 1; i < len(alloc); i++ {
		if alloc[i] > alloc[0] {
			t.Fatal("allocation should track population order")
		}
	}
}

func TestAllocateCustomersZero(t *testing.T) {
	g := testGeo(t, 5, 8)
	alloc := AllocateCustomers(g, 0)
	for _, a := range alloc {
		if a != 0 {
			t.Fatal("zero total should allocate nothing")
		}
	}
}

// TestAllocateCustomersZeroPopulation is the NaN regression: an
// all-zero-population geography used to divide by zero, making every
// largest-remainder fraction NaN and the allocation order dependent on
// the sort's behavior under NaN. It must deterministically allocate
// nothing.
func TestAllocateCustomersZeroPopulation(t *testing.T) {
	g := &Geography{Region: geom.UnitSquare}
	for i := 0; i < 6; i++ {
		g.Cities = append(g.Cities, City{Name: "ghost", Loc: geom.Point{X: 0.1 * float64(i), Y: 0.5}})
	}
	for trial := 0; trial < 3; trial++ {
		alloc := AllocateCustomers(g, 100)
		for i, a := range alloc {
			if a != 0 {
				t.Fatalf("zero-population city %d allocated %d customers", i, a)
			}
		}
	}
}

// TestGravityDemandZeroPopulation covers the same guard in the gravity
// model: no population means no traffic, not NaN entries.
func TestGravityDemandZeroPopulation(t *testing.T) {
	g := &Geography{Region: geom.UnitSquare, Cities: []City{
		{Loc: geom.Point{X: 0.2, Y: 0.2}}, {Loc: geom.Point{X: 0.8, Y: 0.8}},
	}}
	m := GravityDemand(g, GravityConfig{Scale: 1, Exponent: 1})
	for i := range m {
		for j := range m[i] {
			if m[i][j] != 0 {
				t.Fatalf("demand[%d][%d] = %v, want 0 for a zero-population geography", i, j, m[i][j])
			}
		}
	}
}

func TestCustomersFromCity(t *testing.T) {
	g := testGeo(t, 5, 9)
	pts := CustomersFromCity(g, 0, 50, 0.03, 10)
	if len(pts) != 50 {
		t.Fatalf("got %d customers", len(pts))
	}
	center := g.Cities[0].Loc
	far := 0
	for _, p := range pts {
		if !g.Region.Contains(p) {
			t.Fatal("customer outside region")
		}
		if p.Dist(center) > 0.15 {
			far++
		}
	}
	if far > 5 {
		t.Fatalf("%d of 50 customers implausibly far from city center", far)
	}
}
