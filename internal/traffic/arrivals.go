package traffic

import (
	"repro/internal/geom"
	"repro/internal/rng"
)

// ArrivalPoints draws n arrival locations from the geography: each point
// picks a city with probability proportional to population, then
// scatters around it with the given Gaussian spread. This is the §2.1
// economic reality ("most customers reside in the big cities") packaged
// as an arrival process for the HOT growth models.
func ArrivalPoints(g *Geography, n int, spread float64, seed int64) []geom.Point {
	r := rng.New(seed)
	weights := make([]float64, len(g.Cities))
	for i, c := range g.Cities {
		weights[i] = c.Population
	}
	out := make([]geom.Point, n)
	for i := range out {
		ci := rng.WeightedChoice(r, weights)
		pts := g.Region.GaussianCluster(r, g.Cities[ci].Loc, spread, 1)
		out[i] = pts[0]
	}
	return out
}
