package traffic

import (
	"testing"
)

func TestArrivalPointsCount(t *testing.T) {
	g := testGeo(t, 10, 20)
	pts := ArrivalPoints(g, 500, 0.02, 1)
	if len(pts) != 500 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !g.Region.Contains(p) {
			t.Fatal("arrival outside region")
		}
	}
}

func TestArrivalPointsTrackPopulation(t *testing.T) {
	g := testGeo(t, 8, 21)
	pts := ArrivalPoints(g, 2000, 0.01, 2)
	// Count arrivals within 0.05 of the biggest vs the smallest city.
	big, small := 0, 0
	for _, p := range pts {
		if p.Dist(g.Cities[0].Loc) < 0.05 {
			big++
		}
		if p.Dist(g.Cities[len(g.Cities)-1].Loc) < 0.05 {
			small++
		}
	}
	if big <= small {
		t.Fatalf("big city drew %d arrivals, small %d — expected concentration", big, small)
	}
}

func TestArrivalPointsDeterministic(t *testing.T) {
	g := testGeo(t, 5, 22)
	a := ArrivalPoints(g, 50, 0.02, 7)
	b := ArrivalPoints(g, 50, 0.02, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("arrivals not deterministic")
		}
	}
}
