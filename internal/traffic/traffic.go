// Package traffic provides the economic substrate of the ISP models: a
// synthetic national geography of population centers, gravity-model
// traffic demand between them, and a simple revenue model.
//
// The paper's §2.2 proposes exactly this input: "A natural approach to
// traffic demand is based on population centers dispersed over a
// geographic region", with the economic realities of §2.1 ("most
// customers reside in the big cities") captured by a Zipf law over city
// sizes — the standard empirical regularity for city populations.
package traffic

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/rng"
)

// City is one population center.
type City struct {
	Name       string
	Loc        geom.Point
	Population float64 // in abstract households
}

// Geography is a set of cities in a region.
type Geography struct {
	Region geom.Rect
	Cities []City
	// Overlaps counts cities placed within MinSeparation of an existing
	// city because rejection sampling gave up (the requested separation
	// was infeasible or nearly so for the region). 0 means every
	// separation constraint was honored.
	Overlaps int
}

// GeographyConfig parameterizes synthetic geography generation.
type GeographyConfig struct {
	NumCities int
	Seed      int64
	Region    geom.Rect // zero value = unit square
	// ZipfExponent controls population skew across city ranks (1.0 is the
	// classic Zipf law for cities). 0 gives equal populations.
	ZipfExponent float64
	// TotalPopulation is distributed across cities; default 1e6.
	TotalPopulation float64
	// MinSeparation rejects city placements closer than this to an
	// existing city (0 disables).
	MinSeparation float64
}

// GenerateGeography draws a synthetic national geography.
func GenerateGeography(cfg GeographyConfig) (*Geography, error) {
	if cfg.NumCities < 1 {
		return nil, fmt.Errorf("traffic: need at least one city")
	}
	region := cfg.Region
	if region == (geom.Rect{}) {
		region = geom.UnitSquare
	}
	total := cfg.TotalPopulation
	if total <= 0 {
		total = 1e6
	}
	r := rng.New(cfg.Seed)
	z := rng.NewZipf(cfg.NumCities, cfg.ZipfExponent)

	tooClose := func(cities []City, p geom.Point) bool {
		for _, c := range cities {
			if c.Loc.Dist(p) < cfg.MinSeparation {
				return true
			}
		}
		return false
	}
	g := &Geography{Region: region}
	for i := 0; i < cfg.NumCities; i++ {
		var p geom.Point
		for attempt := 0; ; attempt++ {
			p = region.RandomPoint(r)
			if cfg.MinSeparation <= 0 || attempt > 200 {
				break
			}
			if !tooClose(g.Cities, p) {
				break
			}
		}
		// Rejection sampling gives up after 200 attempts and accepts an
		// unchecked point; count the violation instead of hiding it.
		if cfg.MinSeparation > 0 && tooClose(g.Cities, p) {
			g.Overlaps++
		}
		g.Cities = append(g.Cities, City{
			Name:       fmt.Sprintf("city-%02d", i),
			Loc:        p,
			Population: total * z.Weight(i+1),
		})
	}
	// Rank 1 (largest) first is convenient for POP placement; Zipf
	// weights already decrease with index, so cities are sorted.
	sort.SliceStable(g.Cities, func(a, b int) bool {
		return g.Cities[a].Population > g.Cities[b].Population
	})
	return g, nil
}

// TotalPopulation sums city populations.
func (g *Geography) TotalPopulation() float64 {
	s := 0.0
	for _, c := range g.Cities {
		s += c.Population
	}
	return s
}

// DemandMatrix is a symmetric city-to-city traffic demand matrix; entry
// [i][j] is offered traffic between cities i and j in demand units.
type DemandMatrix [][]float64

// Total returns the sum over unordered pairs (each pair counted once).
func (m DemandMatrix) Total() float64 {
	s := 0.0
	for i := range m {
		for j := i + 1; j < len(m[i]); j++ {
			s += m[i][j]
		}
	}
	return s
}

// GravityConfig parameterizes the gravity demand model.
type GravityConfig struct {
	// Scale sets overall traffic volume: demand(i,j) =
	// Scale * pop_i * pop_j / (popTotal^2 * max(dist, Epsilon)^Exponent).
	Scale float64
	// Exponent is the distance-decay power (1.0 default; 0 disables
	// distance decay).
	Exponent float64
	// Epsilon floors the distance so co-located cities don't blow up.
	Epsilon float64
}

// GravityDemand builds the gravity-model demand matrix for a geography.
func GravityDemand(g *Geography, cfg GravityConfig) DemandMatrix {
	n := len(g.Cities)
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	exp := cfg.Exponent
	eps := cfg.Epsilon
	if eps <= 0 {
		eps = 0.01
	}
	popTotal := g.TotalPopulation()
	m := make(DemandMatrix, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	if popTotal <= 0 {
		// No population, no traffic (and no NaN fractions).
		return m
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := g.Cities[i].Loc.Dist(g.Cities[j].Loc)
			if d < eps {
				d = eps
			}
			v := scale * g.Cities[i].Population * g.Cities[j].Population /
				(popTotal * popTotal * math.Pow(d, exp))
			m[i][j] = v
			m[j][i] = v
		}
	}
	return m
}

// RevenueModel prices delivered traffic.
type RevenueModel struct {
	// PricePerUnit is revenue per delivered demand unit.
	PricePerUnit float64
}

// Revenue returns revenue for the given delivered demand volume.
func (rm RevenueModel) Revenue(delivered float64) float64 {
	return rm.PricePerUnit * delivered
}

// CustomersFromCity scatters n customer locations around a city center
// with the given spread, clamped to the region.
func CustomersFromCity(g *Geography, cityIdx, n int, spread float64, seed int64) []geom.Point {
	r := rng.New(seed)
	return g.Region.GaussianCluster(r, g.Cities[cityIdx].Loc, spread, n)
}

// AllocateCustomers distributes total customers across cities in
// proportion to population (largest remainder method, deterministic).
// An all-zero-population geography has no proportions to honor and
// allocates zero customers everywhere.
func AllocateCustomers(g *Geography, total int) []int {
	n := len(g.Cities)
	out := make([]int, n)
	if total <= 0 || n == 0 {
		return out
	}
	pop := g.TotalPopulation()
	if pop <= 0 {
		// Dividing by zero population would make every fraction NaN and
		// the largest-remainder sort nondeterministic.
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	var rems []rem
	assigned := 0
	for i, c := range g.Cities {
		exact := float64(total) * c.Population / pop
		out[i] = int(exact)
		assigned += out[i]
		rems = append(rems, rem{i, exact - float64(out[i])})
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for k := 0; assigned < total; k++ {
		out[rems[k%len(rems)].idx]++
		assigned++
	}
	return out
}
